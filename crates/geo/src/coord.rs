//! Validated WGS84 coordinates.
//!
//! Every location in the workspace — router positions, database answers,
//! probe metadata, gazetteer entries — is a [`Coordinate`]. Construction is
//! checked so downstream distance math never sees NaN or out-of-range
//! values; geolocation databases in the wild do ship junk coordinates, and
//! parsers in `routergeo-db` surface those as errors rather than panics.

use std::fmt;

/// Errors produced when constructing or parsing a [`Coordinate`].
#[derive(Debug, Clone, PartialEq)]
pub enum CoordinateError {
    /// Latitude outside the [-90, +90] degree range, or not finite.
    InvalidLatitude(f64),
    /// Longitude outside the [-180, +180] degree range, or not finite.
    InvalidLongitude(f64),
    /// A textual coordinate could not be parsed.
    Parse(String),
}

impl fmt::Display for CoordinateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordinateError::InvalidLatitude(v) => {
                write!(f, "latitude {v} out of range [-90, 90]")
            }
            CoordinateError::InvalidLongitude(v) => {
                write!(f, "longitude {v} out of range [-180, 180]")
            }
            CoordinateError::Parse(s) => write!(f, "cannot parse coordinate from {s:?}"),
        }
    }
}

impl std::error::Error for CoordinateError {}

/// A WGS84 latitude/longitude pair in decimal degrees.
///
/// Invariants (enforced at construction):
/// * `-90.0 <= lat <= 90.0`
/// * `-180.0 <= lon <= 180.0`
/// * both values are finite.
///
/// `Coordinate` implements `Eq`/`Hash` via a fixed-point quantization to
/// 1e-6 degrees (≈ 0.11 m at the equator), which lets ground-truth code
/// count *unique coordinates* exactly as the paper's Table 1 does.
#[derive(Debug, Clone, Copy)]
pub struct Coordinate {
    lat: f64,
    lon: f64,
}

impl Coordinate {
    /// Create a coordinate, validating ranges.
    pub fn new(lat: f64, lon: f64) -> Result<Self, CoordinateError> {
        if !lat.is_finite() || !(-90.0..=90.0).contains(&lat) {
            return Err(CoordinateError::InvalidLatitude(lat));
        }
        if !lon.is_finite() || !(-180.0..=180.0).contains(&lon) {
            return Err(CoordinateError::InvalidLongitude(lon));
        }
        Ok(Coordinate { lat, lon })
    }

    /// Create a coordinate, normalizing longitude into [-180, 180] and
    /// clamping latitude into [-90, 90].
    ///
    /// Used by the world generator when scattering points near the poles or
    /// the antimeridian; the result is always valid.
    pub fn wrapped(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = (lon + 180.0).rem_euclid(360.0) - 180.0;
        // xtask-allow: RG004 exact canonicalization branch: rem_euclid yields exactly -180.0 for antimeridian inputs
        if lon == -180.0 {
            lon = 180.0;
        }
        Coordinate { lat, lon }
    }

    /// Latitude in decimal degrees, in [-90, 90].
    #[inline]
    pub fn lat(&self) -> f64 {
        self.lat
    }

    /// Longitude in decimal degrees, in [-180, 180].
    #[inline]
    pub fn lon(&self) -> f64 {
        self.lon
    }

    /// Latitude in radians.
    #[inline]
    pub fn lat_rad(&self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians.
    #[inline]
    pub fn lon_rad(&self) -> f64 {
        self.lon.to_radians()
    }

    /// Quantize to 1e-6 degrees for exact equality/hashing.
    #[inline]
    fn quantized(&self) -> (i64, i64) {
        (
            (self.lat * 1e6).round() as i64,
            (self.lon * 1e6).round() as i64,
        )
    }

    /// Great-circle distance to `other` in kilometres (haversine).
    #[inline]
    pub fn distance_km(&self, other: &Coordinate) -> f64 {
        crate::distance::haversine_km(self, other)
    }

    /// Parse from `"lat,lon"` decimal-degree text (the CSV database format).
    pub fn parse(s: &str) -> Result<Self, CoordinateError> {
        let mut parts = s.splitn(2, ',');
        let lat = parts
            .next()
            .and_then(|p| p.trim().parse::<f64>().ok())
            .ok_or_else(|| CoordinateError::Parse(s.to_string()))?;
        let lon = parts
            .next()
            .and_then(|p| p.trim().parse::<f64>().ok())
            .ok_or_else(|| CoordinateError::Parse(s.to_string()))?;
        Coordinate::new(lat, lon)
    }

    /// Parse a degrees-minutes-seconds pair like the paper's
    /// `N51°00′00″ E09°00′00″` (§3.2's default-coordinate example).
    /// ASCII quote variants (`'`, `"`) are accepted too.
    pub fn parse_dms(s: &str) -> Result<Self, CoordinateError> {
        let err = || CoordinateError::Parse(s.to_string());
        let mut parts = s.split_whitespace();
        let lat_part = parts.next().ok_or_else(err)?;
        let lon_part = parts.next().ok_or_else(err)?;
        if parts.next().is_some() {
            return Err(err());
        }
        let lat = Self::parse_dms_component(lat_part, 'N', 'S').ok_or_else(err)?;
        let lon = Self::parse_dms_component(lon_part, 'E', 'W').ok_or_else(err)?;
        Coordinate::new(lat, lon)
    }

    fn parse_dms_component(s: &str, pos: char, neg: char) -> Option<f64> {
        let mut chars = s.chars();
        let hemi = chars.next()?;
        let sign = if hemi == pos {
            1.0
        } else if hemi == neg {
            -1.0
        } else {
            return None;
        };
        // Split on the degree/minute/second markers, tolerating ASCII
        // fallbacks and missing trailing fields.
        let rest: String = chars.collect();
        let mut fields = rest
            .split(['°', '′', '″', '\'', '"'])
            .filter(|f| !f.is_empty());
        let deg: f64 = fields.next()?.trim().parse().ok()?;
        let min: f64 = match fields.next() {
            Some(f) => f.trim().parse().ok()?,
            None => 0.0,
        };
        let sec: f64 = match fields.next() {
            Some(f) => f.trim().parse().ok()?,
            None => 0.0,
        };
        if fields.next().is_some() || !(0.0..60.0).contains(&min) || !(0.0..60.0).contains(&sec) {
            return None;
        }
        Some(sign * (deg + min / 60.0 + sec / 3600.0))
    }
}

impl PartialEq for Coordinate {
    fn eq(&self, other: &Self) -> bool {
        self.quantized() == other.quantized()
    }
}

impl Eq for Coordinate {}

impl std::hash::Hash for Coordinate {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.quantized().hash(state);
    }
}

impl fmt::Display for Coordinate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6},{:.6}", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_valid_ranges() {
        assert!(Coordinate::new(0.0, 0.0).is_ok());
        assert!(Coordinate::new(90.0, 180.0).is_ok());
        assert!(Coordinate::new(-90.0, -180.0).is_ok());
        assert!(Coordinate::new(51.0, 9.0).is_ok()); // Germany's default centroid (§3.2)
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(matches!(
            Coordinate::new(90.5, 0.0),
            Err(CoordinateError::InvalidLatitude(_))
        ));
        assert!(matches!(
            Coordinate::new(0.0, 181.0),
            Err(CoordinateError::InvalidLongitude(_))
        ));
        assert!(Coordinate::new(f64::NAN, 0.0).is_err());
        assert!(Coordinate::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn wrapped_normalizes_longitude() {
        let c = Coordinate::wrapped(10.0, 190.0);
        assert!((c.lon() - -170.0).abs() < 1e-9);
        let c = Coordinate::wrapped(10.0, -190.0);
        assert!((c.lon() - 170.0).abs() < 1e-9);
        let c = Coordinate::wrapped(95.0, 0.0);
        assert_eq!(c.lat(), 90.0);
    }

    #[test]
    fn wrapped_is_always_valid() {
        for lat in [-1000.0, -90.0, 0.0, 90.0, 1000.0] {
            for lon in [-1000.0, -180.0, 0.0, 180.0, 1000.0, 359.9] {
                let c = Coordinate::wrapped(lat, lon);
                assert!(Coordinate::new(c.lat(), c.lon()).is_ok(), "{lat},{lon}");
            }
        }
    }

    #[test]
    fn equality_is_quantized() {
        let a = Coordinate::new(50.0000001, 8.0).unwrap();
        let b = Coordinate::new(50.0000004, 8.0).unwrap();
        let c = Coordinate::new(50.001, 8.0).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn parse_roundtrip() {
        let c = Coordinate::new(37.7749, -122.4194).unwrap();
        let parsed = Coordinate::parse(&c.to_string()).unwrap();
        assert_eq!(c, parsed);
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(Coordinate::parse("").is_err());
        assert!(Coordinate::parse("abc,def").is_err());
        assert!(Coordinate::parse("12.0").is_err());
        assert!(Coordinate::parse("91.0,0.0").is_err());
    }

    #[test]
    fn parse_dms_paper_example() {
        // §3.2: Germany's default country coordinates.
        let c = Coordinate::parse_dms("N51°00′00″ E09°00′00″").unwrap();
        assert_eq!(c, Coordinate::new(51.0, 9.0).unwrap());
    }

    #[test]
    fn parse_dms_variants() {
        let c = Coordinate::parse_dms("S33°51′54″ E151°12′34″").unwrap();
        assert!((c.lat() + 33.865).abs() < 0.001, "{}", c.lat());
        assert!((c.lon() - 151.2094).abs() < 0.001, "{}", c.lon());
        // ASCII quotes and missing seconds.
        let c = Coordinate::parse_dms("N40°30' W74°0'").unwrap();
        assert!((c.lat() - 40.5).abs() < 1e-9);
        assert!((c.lon() + 74.0).abs() < 1e-9);
        // Degrees only.
        let c = Coordinate::parse_dms("N51° E9°").unwrap();
        assert_eq!(c, Coordinate::new(51.0, 9.0).unwrap());
    }

    #[test]
    fn parse_dms_rejects_junk() {
        for s in [
            "",
            "N51°00′00″",            // missing longitude
            "X51°00′00″ E09°00′00″", // bad hemisphere
            "N51°72′00″ E09°00′00″", // minutes out of range
            "N91°00′00″ E09°00′00″", // latitude out of range
            "N51°00′00″ E09°00′00″ extra",
            "N51°00′00″00″ E09°00′00″", // too many fields
        ] {
            assert!(Coordinate::parse_dms(s).is_err(), "{s:?} accepted");
        }
    }

    #[test]
    fn display_has_six_decimals() {
        let c = Coordinate::new(1.5, -2.25).unwrap();
        assert_eq!(c.to_string(), "1.500000,-2.250000");
    }
}

//! Empirical cumulative distribution functions.
//!
//! The paper's Figures 1, 2, 5a and 5b are all distance-distribution CDFs
//! on a log-scale x axis. [`EmpiricalCdf`] is the data structure behind our
//! reproductions: it stores the sorted sample vector and answers the two
//! queries the figures need — "what fraction of samples is ≤ x km?" (e.g.
//! the fraction within the 40 km city range) and "what is the p-th
//! quantile?" (for rendering the curve).

use std::fmt;

/// An empirical CDF over `f64` samples.
///
/// Construction sorts the samples once; queries are `O(log n)`.
///
/// ```
/// use routergeo_geo::EmpiricalCdf;
/// let errors = EmpiricalCdf::new(vec![2.0, 15.0, 38.0, 700.0]).unwrap();
/// // Three of four answers are within the paper's 40 km city range.
/// assert_eq!(errors.fraction_leq(40.0), 0.75);
/// // Even-length median is the conventional midpoint of the two
/// // middle samples, (15 + 38) / 2.
/// assert_eq!(errors.median(), Some(26.5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

/// Error constructing a CDF from samples containing NaN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NanSample;

impl fmt::Display for NanSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CDF samples must not contain NaN")
    }
}

impl std::error::Error for NanSample {}

impl EmpiricalCdf {
    /// Build a CDF from samples. Fails if any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Result<Self, NanSample> {
        if samples.iter().any(|v| v.is_nan()) {
            return Err(NanSample);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Ok(EmpiricalCdf { sorted: samples })
    }

    /// Build from an iterator, dropping NaN values. Returns the CDF and
    /// the number of samples dropped, so callers can surface a shrunken
    /// figure denominator instead of hiding it; the drop is also
    /// recorded on the `cdf.samples_in` / `cdf.samples_kept` /
    /// `cdf.dropped_nan` obs counters, which `cargo xtask obs-check`
    /// cross-checks against each other.
    pub fn from_iter_lossy<I: IntoIterator<Item = f64>>(iter: I) -> (Self, usize) {
        let mut seen = 0usize;
        let samples: Vec<f64> = iter
            .into_iter()
            .inspect(|_| seen += 1)
            .filter(|v| !v.is_nan())
            .collect();
        let dropped = seen - samples.len();
        routergeo_obs::counter("cdf.samples_in").add(seen as u64);
        routergeo_obs::counter("cdf.samples_kept").add(samples.len() as u64);
        routergeo_obs::counter("cdf.dropped_nan").add(dropped as u64);
        (EmpiricalCdf::new(samples).expect("NaN filtered"), dropped)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`, in [0, 1]. Returns 0 for an empty CDF.
    pub fn fraction_leq(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples `> x`, in [0, 1].
    ///
    /// Figure 1's headline — "at least 29% city-level disagreements" — is
    /// `fraction_gt(40.0)` on the pairwise distance CDF.
    pub fn fraction_gt(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        1.0 - self.fraction_leq(x)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1); `None` when empty or `q` is out of
    /// range.
    ///
    /// Nearest-rank, except when `q·n` lands **exactly on a sample
    /// boundary** (an integer rank strictly inside the sample vector):
    /// there the two adjacent samples are averaged. This is the
    /// conventional midpoint estimator the paper's figures use — in
    /// particular `quantile(0.5)` of an even-length sample is the
    /// average of the two middle samples, not the lower one.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&q) || q.is_nan() {
            return None;
        }
        let n = self.sorted.len();
        let h = q * n as f64;
        let rank = (h.ceil() as usize).clamp(1, n);
        let v = self.sorted[rank - 1];
        // xtask-allow: RG004 exact-boundary rank test (is q*n an integer?), not an epsilon comparison
        if h.fract() == 0.0 && h >= 1.0 && rank < n {
            return Some((v + self.sorted[rank]) / 2.0);
        }
        Some(v)
    }

    /// Median, `None` when empty. Even-length samples yield the
    /// midpoint of the two middle samples (see [`EmpiricalCdf::quantile`]).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Sample the curve at the given x positions, yielding `(x, F(x))`
    /// pairs — the series a plotting tool would consume.
    pub fn series(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.fraction_leq(x))).collect()
    }

    /// Standard log-spaced x grid matching the paper's figures
    /// (10^lo … 10^hi with `per_decade` points per decade).
    pub fn log_grid(lo_exp: i32, hi_exp: i32, per_decade: usize) -> Vec<f64> {
        assert!(hi_exp >= lo_exp && per_decade > 0);
        let mut xs = Vec::new();
        let total = ((hi_exp - lo_exp) as usize) * per_decade;
        for i in 0..=total {
            let exp = lo_exp as f64 + i as f64 / per_decade as f64;
            xs.push(10f64.powf(exp));
        }
        xs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_nan() {
        assert!(EmpiricalCdf::new(vec![1.0, f64::NAN]).is_err());
        assert!(EmpiricalCdf::new(vec![]).is_ok());
    }

    #[test]
    fn lossy_drops_nan_and_reports_count() {
        let (cdf, dropped) = EmpiricalCdf::from_iter_lossy(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
        assert_eq!(dropped, 1);
        let (clean, dropped) = EmpiricalCdf::from_iter_lossy(vec![1.0, 2.0]);
        assert_eq!(clean.len(), 2);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn fraction_leq_basics() {
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(cdf.fraction_leq(0.5), 0.0);
        assert_eq!(cdf.fraction_leq(1.0), 0.25);
        assert_eq!(cdf.fraction_leq(2.5), 0.5);
        assert_eq!(cdf.fraction_leq(4.0), 1.0);
        assert_eq!(cdf.fraction_leq(100.0), 1.0);
    }

    #[test]
    fn fraction_gt_complements_leq() {
        let cdf = EmpiricalCdf::new(vec![10.0, 20.0, 50.0, 80.0, 100.0]).unwrap();
        for x in [0.0, 10.0, 40.0, 99.9, 100.0, 101.0] {
            let total = cdf.fraction_leq(x) + cdf.fraction_gt(x);
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicates_are_counted() {
        let cdf = EmpiricalCdf::new(vec![5.0; 10]).unwrap();
        assert_eq!(cdf.fraction_leq(5.0), 1.0);
        assert_eq!(cdf.fraction_leq(4.999), 0.0);
    }

    #[test]
    fn quantiles() {
        let cdf = EmpiricalCdf::new((1..=100).map(|i| i as f64).collect()).unwrap();
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        // 0.5 · 100 lands exactly between samples 50 and 51 → midpoint.
        assert_eq!(cdf.quantile(0.5), Some(50.5));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        assert_eq!(cdf.median(), Some(50.5));
        // Off-boundary ranks stay nearest-rank.
        assert_eq!(cdf.quantile(0.501), Some(51.0));
        assert_eq!(cdf.quantile(1.5), None);
        assert_eq!(cdf.quantile(-0.1), None);
        assert_eq!(cdf.quantile(f64::NAN), None);
    }

    #[test]
    fn even_length_median_is_the_midpoint() {
        // The doc example's sample: the old nearest-rank-lower
        // convention returned 15.0 (the lower middle sample); the
        // conventional midpoint the paper's figures use is 26.5.
        let cdf = EmpiricalCdf::new(vec![2.0, 15.0, 38.0, 700.0]).unwrap();
        assert_ne!(cdf.median(), Some(15.0), "old convention resurfaced");
        assert_eq!(cdf.median(), Some((15.0 + 38.0) / 2.0));
        // Odd lengths are untouched: the middle sample, exactly.
        let odd = EmpiricalCdf::new(vec![2.0, 15.0, 700.0]).unwrap();
        assert_eq!(odd.median(), Some(15.0));
        // Two samples: their average.
        let two = EmpiricalCdf::new(vec![10.0, 20.0]).unwrap();
        assert_eq!(two.median(), Some(15.0));
        // One sample: itself.
        let one = EmpiricalCdf::new(vec![7.0]).unwrap();
        assert_eq!(one.median(), Some(7.0));
    }

    #[test]
    fn quantile_boundary_semantics() {
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        // q = 0 and q = 1 clamp to the extreme samples, never averaged.
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(4.0));
        // Every interior integer rank averages its two neighbours.
        assert_eq!(cdf.quantile(0.25), Some(1.5));
        assert_eq!(cdf.quantile(0.75), Some(3.5));
        // Just past a boundary → the next sample alone.
        assert_eq!(cdf.quantile(0.26), Some(2.0));
        // Empty CDF answers None for any q.
        let empty = EmpiricalCdf::new(vec![]).unwrap();
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.quantile(0.0), None);
    }

    #[test]
    fn fraction_leq_exact_boundary_sample() {
        // `<=` semantics: a query exactly on a sample includes it.
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(cdf.fraction_leq(2.0), 0.75);
        assert_eq!(cdf.fraction_gt(2.0), 0.25);
        assert_eq!(cdf.fraction_leq(1.9999), 0.25);
    }

    #[test]
    fn empty_cdf_is_harmless() {
        let cdf = EmpiricalCdf::new(vec![]).unwrap();
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_leq(10.0), 0.0);
        assert_eq!(cdf.fraction_gt(10.0), 0.0);
        assert_eq!(cdf.median(), None);
        assert_eq!(cdf.min(), None);
        assert_eq!(cdf.max(), None);
    }

    #[test]
    fn series_is_monotone() {
        let cdf = EmpiricalCdf::new(vec![0.5, 3.0, 3.0, 70.0, 900.0]).unwrap();
        let xs = EmpiricalCdf::log_grid(-2, 4, 8);
        let series = cdf.series(&xs);
        for pair in series.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "CDF must be nondecreasing");
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn log_grid_spans_decades() {
        let xs = EmpiricalCdf::log_grid(-2, 4, 1);
        assert_eq!(xs.len(), 7);
        assert!((xs[0] - 0.01).abs() < 1e-12);
        assert!((xs[6] - 10_000.0).abs() < 1e-6);
    }
}

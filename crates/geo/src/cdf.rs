//! Empirical cumulative distribution functions.
//!
//! The paper's Figures 1, 2, 5a and 5b are all distance-distribution CDFs
//! on a log-scale x axis. [`EmpiricalCdf`] is the data structure behind our
//! reproductions: it stores the sorted sample vector and answers the two
//! queries the figures need — "what fraction of samples is ≤ x km?" (e.g.
//! the fraction within the 40 km city range) and "what is the p-th
//! quantile?" (for rendering the curve).

use std::fmt;

/// An empirical CDF over `f64` samples.
///
/// Construction sorts the samples once; queries are `O(log n)`.
///
/// ```
/// use routergeo_geo::EmpiricalCdf;
/// let errors = EmpiricalCdf::new(vec![2.0, 15.0, 38.0, 700.0]).unwrap();
/// // Three of four answers are within the paper's 40 km city range.
/// assert_eq!(errors.fraction_leq(40.0), 0.75);
/// assert_eq!(errors.median(), Some(15.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

/// Error constructing a CDF from samples containing NaN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NanSample;

impl fmt::Display for NanSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CDF samples must not contain NaN")
    }
}

impl std::error::Error for NanSample {}

impl EmpiricalCdf {
    /// Build a CDF from samples. Fails if any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Result<Self, NanSample> {
        if samples.iter().any(|v| v.is_nan()) {
            return Err(NanSample);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Ok(EmpiricalCdf { sorted: samples })
    }

    /// Build from an iterator, silently dropping NaN values.
    ///
    /// Convenient for analysis pipelines where a NaN indicates an upstream
    /// record that was already excluded from the figure.
    pub fn from_iter_lossy<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let samples: Vec<f64> = iter.into_iter().filter(|v| !v.is_nan()).collect();
        EmpiricalCdf::new(samples).expect("NaN filtered")
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`, in [0, 1]. Returns 0 for an empty CDF.
    pub fn fraction_leq(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples `> x`, in [0, 1].
    ///
    /// Figure 1's headline — "at least 29% city-level disagreements" — is
    /// `fraction_gt(40.0)` on the pairwise distance CDF.
    pub fn fraction_gt(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        1.0 - self.fraction_leq(x)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using nearest-rank; `None` when empty
    /// or `q` is out of range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&q) || q.is_nan() {
            return None;
        }
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// Median, `None` when empty.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Sample the curve at the given x positions, yielding `(x, F(x))`
    /// pairs — the series a plotting tool would consume.
    pub fn series(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.fraction_leq(x))).collect()
    }

    /// Standard log-spaced x grid matching the paper's figures
    /// (10^lo … 10^hi with `per_decade` points per decade).
    pub fn log_grid(lo_exp: i32, hi_exp: i32, per_decade: usize) -> Vec<f64> {
        assert!(hi_exp >= lo_exp && per_decade > 0);
        let mut xs = Vec::new();
        let total = ((hi_exp - lo_exp) as usize) * per_decade;
        for i in 0..=total {
            let exp = lo_exp as f64 + i as f64 / per_decade as f64;
            xs.push(10f64.powf(exp));
        }
        xs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_nan() {
        assert!(EmpiricalCdf::new(vec![1.0, f64::NAN]).is_err());
        assert!(EmpiricalCdf::new(vec![]).is_ok());
    }

    #[test]
    fn lossy_drops_nan() {
        let cdf = EmpiricalCdf::from_iter_lossy(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn fraction_leq_basics() {
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(cdf.fraction_leq(0.5), 0.0);
        assert_eq!(cdf.fraction_leq(1.0), 0.25);
        assert_eq!(cdf.fraction_leq(2.5), 0.5);
        assert_eq!(cdf.fraction_leq(4.0), 1.0);
        assert_eq!(cdf.fraction_leq(100.0), 1.0);
    }

    #[test]
    fn fraction_gt_complements_leq() {
        let cdf = EmpiricalCdf::new(vec![10.0, 20.0, 50.0, 80.0, 100.0]).unwrap();
        for x in [0.0, 10.0, 40.0, 99.9, 100.0, 101.0] {
            let total = cdf.fraction_leq(x) + cdf.fraction_gt(x);
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicates_are_counted() {
        let cdf = EmpiricalCdf::new(vec![5.0; 10]).unwrap();
        assert_eq!(cdf.fraction_leq(5.0), 1.0);
        assert_eq!(cdf.fraction_leq(4.999), 0.0);
    }

    #[test]
    fn quantiles() {
        let cdf = EmpiricalCdf::new((1..=100).map(|i| i as f64).collect()).unwrap();
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(0.5), Some(50.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        assert_eq!(cdf.median(), Some(50.0));
        assert_eq!(cdf.quantile(1.5), None);
        assert_eq!(cdf.quantile(-0.1), None);
        assert_eq!(cdf.quantile(f64::NAN), None);
    }

    #[test]
    fn empty_cdf_is_harmless() {
        let cdf = EmpiricalCdf::new(vec![]).unwrap();
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_leq(10.0), 0.0);
        assert_eq!(cdf.fraction_gt(10.0), 0.0);
        assert_eq!(cdf.median(), None);
        assert_eq!(cdf.min(), None);
        assert_eq!(cdf.max(), None);
    }

    #[test]
    fn series_is_monotone() {
        let cdf = EmpiricalCdf::new(vec![0.5, 3.0, 3.0, 70.0, 900.0]).unwrap();
        let xs = EmpiricalCdf::log_grid(-2, 4, 8);
        let series = cdf.series(&xs);
        for pair in series.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "CDF must be nondecreasing");
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn log_grid_spans_decades() {
        let xs = EmpiricalCdf::log_grid(-2, 4, 1);
        assert_eq!(xs.len(), 7);
        assert!((xs[0] - 0.01).abs() < 1e-12);
        assert!((xs[6] - 10_000.0).abs() < 1e-6);
    }
}

//! Regional Internet Registries.
//!
//! The paper breaks down every accuracy result by the RIR that allocated the
//! address (learned from the Team Cymru whois service, §2.3.3). The five
//! registries partition the world's address space administration.

use std::fmt;
use std::str::FromStr;

/// One of the five Regional Internet Registries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rir {
    /// AFRINIC — Africa.
    Afrinic,
    /// APNIC — Asia-Pacific.
    Apnic,
    /// ARIN — North America (and parts of the Caribbean).
    Arin,
    /// LACNIC — Latin America and the Caribbean.
    Lacnic,
    /// RIPE NCC — Europe, Middle East, Central Asia, Russia.
    RipeNcc,
}

impl Rir {
    /// All five registries, in the order the paper's Table 1 lists them
    /// (ARIN, APNIC, AFRINIC, LACNIC, RIPENCC).
    pub const TABLE1_ORDER: [Rir; 5] = [
        Rir::Arin,
        Rir::Apnic,
        Rir::Afrinic,
        Rir::Lacnic,
        Rir::RipeNcc,
    ];

    /// All five registries in alphabetical order.
    pub const ALL: [Rir; 5] = [
        Rir::Afrinic,
        Rir::Apnic,
        Rir::Arin,
        Rir::Lacnic,
        Rir::RipeNcc,
    ];

    /// Canonical upper-case name as the paper prints it (e.g. `RIPENCC`).
    pub fn name(&self) -> &'static str {
        match self {
            Rir::Afrinic => "AFRINIC",
            Rir::Apnic => "APNIC",
            Rir::Arin => "ARIN",
            Rir::Lacnic => "LACNIC",
            Rir::RipeNcc => "RIPENCC",
        }
    }

    /// Stable small integer id, used in binary formats.
    pub fn id(&self) -> u8 {
        match self {
            Rir::Afrinic => 0,
            Rir::Apnic => 1,
            Rir::Arin => 2,
            Rir::Lacnic => 3,
            Rir::RipeNcc => 4,
        }
    }

    /// Inverse of [`Rir::id`].
    pub fn from_id(id: u8) -> Option<Rir> {
        match id {
            0 => Some(Rir::Afrinic),
            1 => Some(Rir::Apnic),
            2 => Some(Rir::Arin),
            3 => Some(Rir::Lacnic),
            4 => Some(Rir::RipeNcc),
            _ => None,
        }
    }
}

impl fmt::Display for Rir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown registry name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRirError(pub String);

impl fmt::Display for ParseRirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown RIR name: {:?}", self.0)
    }
}

impl std::error::Error for ParseRirError {}

impl FromStr for Rir {
    type Err = ParseRirError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "AFRINIC" => Ok(Rir::Afrinic),
            "APNIC" => Ok(Rir::Apnic),
            "ARIN" => Ok(Rir::Arin),
            "LACNIC" => Ok(Rir::Lacnic),
            "RIPENCC" | "RIPE" | "RIPE NCC" | "RIPE-NCC" => Ok(Rir::RipeNcc),
            other => Err(ParseRirError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        for rir in Rir::ALL {
            assert_eq!(Rir::from_id(rir.id()), Some(rir));
        }
        assert_eq!(Rir::from_id(5), None);
        assert_eq!(Rir::from_id(255), None);
    }

    #[test]
    fn parse_roundtrip() {
        for rir in Rir::ALL {
            assert_eq!(rir.name().parse::<Rir>().unwrap(), rir);
        }
    }

    #[test]
    fn parse_is_case_insensitive_and_accepts_aliases() {
        assert_eq!("arin".parse::<Rir>().unwrap(), Rir::Arin);
        assert_eq!("ripe".parse::<Rir>().unwrap(), Rir::RipeNcc);
        assert_eq!("RIPE NCC".parse::<Rir>().unwrap(), Rir::RipeNcc);
        assert_eq!(" apnic ".parse::<Rir>().unwrap(), Rir::Apnic);
        assert!("IANA".parse::<Rir>().is_err());
    }

    #[test]
    fn table1_order_matches_paper() {
        let names: Vec<_> = Rir::TABLE1_ORDER.iter().map(|r| r.name()).collect();
        assert_eq!(names, ["ARIN", "APNIC", "AFRINIC", "LACNIC", "RIPENCC"]);
    }
}

//! Small statistics helpers shared by the evaluation and reporting code.

/// Running mean/variance accumulator (Welford's algorithm).
///
/// Used by the benchmark harness to summarize distance errors without
/// holding all samples when only aggregates are needed.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance; `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Population standard deviation; `None` when empty.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

/// A fixed set of log-scale distance buckets, used when printing textual
/// histograms of geolocation error (the console rendering of Figures 2/5).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// Bucket upper bounds in km (exclusive), ascending.
    bounds: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
}

impl LogHistogram {
    /// Standard distance buckets for geolocation error: powers of ten from
    /// 1 km to 10,000 km with a 40 km city-range bucket inserted.
    pub fn distance_buckets() -> Self {
        Self::with_bounds(vec![1.0, 10.0, 40.0, 100.0, 1_000.0, 10_000.0])
    }

    /// Build with custom ascending bucket bounds.
    ///
    /// # Panics
    /// Panics when `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "need at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly ascending"
        );
        let n = bounds.len();
        LogHistogram {
            bounds,
            counts: vec![0; n],
            overflow: 0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        match self.bounds.iter().position(|b| x < *b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }

    /// Iterate `(label, count)` rows, e.g. `("< 40 km", 123)`, ending with
    /// the overflow row.
    pub fn rows(&self) -> Vec<(String, u64)> {
        let mut rows = Vec::with_capacity(self.bounds.len() + 1);
        for (i, b) in self.bounds.iter().enumerate() {
            rows.push((format!("< {b} km"), self.counts[i]));
        }
        rows.push((
            format!(">= {} km", self.bounds.last().expect("non-empty")),
            self.overflow,
        ));
        rows
    }
}

/// Percentage formatting helper: `fraction(0.294) == "29.4%"`.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Safe ratio: `0/0 == 0.0` rather than NaN, so empty slices never poison
/// report tables.
pub fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for x in xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((w.stddev().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert!(w.mean().is_none());
        assert!(w.variance().is_none());
    }

    #[test]
    fn histogram_buckets() {
        let mut h = LogHistogram::distance_buckets();
        for x in [0.5, 5.0, 39.9, 40.0, 99.0, 500.0, 5000.0, 20000.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 8);
        let rows = h.rows();
        assert_eq!(rows[0], ("< 1 km".to_string(), 1));
        assert_eq!(rows[1], ("< 10 km".to_string(), 1));
        assert_eq!(rows[2], ("< 40 km".to_string(), 1)); // 39.9 only; 40.0 goes up
        assert_eq!(rows[3], ("< 100 km".to_string(), 2)); // 40.0, 99.0
        assert_eq!(rows[4], ("< 1000 km".to_string(), 1));
        assert_eq!(rows[5], ("< 10000 km".to_string(), 1));
        assert_eq!(rows[6], (">= 10000 km".to_string(), 1));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_bad_bounds() {
        LogHistogram::with_bounds(vec![10.0, 5.0]);
    }

    #[test]
    fn pct_and_ratio() {
        assert_eq!(pct(0.294), "29.4%");
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(ratio(1, 4), 0.25);
        assert_eq!(ratio(0, 0), 0.0);
    }
}

//! Great-circle distance math and the RTT → distance bound.
//!
//! The paper's RTT-proximity method (§2.3.2) rests on a physical constraint:
//! light in fibre travels at roughly 2/3 of *c*, so a 0.5 ms round-trip time
//! bounds the one-way fibre path at 50 km — and the geographic distance is
//! "likely much less due to inflation in RTT measurement". This module
//! implements exactly that arithmetic, plus the haversine distance used for
//! all coordinate comparisons and the destination-point formula used by the
//! world generator to scatter cities and routers inside a country.

use crate::coord::Coordinate;

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Speed of light in vacuum, km per millisecond.
pub const LIGHT_SPEED_KM_PER_MS: f64 = 299.792_458;

/// Effective signal speed in optical fibre, km per millisecond (≈ 2/3 c).
///
/// This is the constant behind the paper's "0.5 ms RTT ⇒ at most 50 km"
/// statement: `0.5 ms / 2 (round trip) * ~200 km/ms = 50 km`.
pub const FIBER_SPEED_KM_PER_MS: f64 = LIGHT_SPEED_KM_PER_MS * 2.0 / 3.0;

/// Default tolerance for coordinate-degree comparisons: about 0.11 m of
/// latitude, far below the precision of any geolocation database.
pub const COORD_EPSILON: f64 = 1e-6;

/// Whether two floating-point values agree within `eps`.
///
/// NaN never compares equal to anything, matching IEEE semantics.
pub fn approx_eq_eps(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// Whether two coordinate components agree within [`COORD_EPSILON`].
///
/// This is the epsilon comparison the RG004 lint requires in place of
/// exact `==` / `!=` on coordinate values.
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_eps(a, b, COORD_EPSILON)
}

/// Great-circle distance between two coordinates in kilometres, using the
/// haversine formula.
///
/// Numerically stable for small distances (the common case when checking the
/// paper's 40 km city range) and exact antipodes.
pub fn haversine_km(a: &Coordinate, b: &Coordinate) -> f64 {
    let (lat1, lon1) = (a.lat_rad(), a.lon_rad());
    let (lat2, lon2) = (b.lat_rad(), b.lon_rad());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    // Clamp to guard against floating-point drift just above 1.0.
    2.0 * EARTH_RADIUS_KM * h.sqrt().clamp(0.0, 1.0).asin()
}

/// Upper bound on the great-circle distance implied by a round-trip time.
///
/// `rtt_ms` is a *round-trip* time: the signal covers the distance twice, so
/// the bound is `rtt/2 * fibre-speed`. With the paper's 0.5 ms threshold this
/// returns 50 km (well, 49.97 km with the exact 2/3-c constant; the paper
/// rounds to 50).
pub fn rtt_to_max_distance_km(rtt_ms: f64) -> f64 {
    debug_assert!(rtt_ms >= 0.0, "negative RTT");
    rtt_ms / 2.0 * FIBER_SPEED_KM_PER_MS
}

/// Minimum round-trip time physically required to cover `distance_km`.
///
/// This is the propagation floor used by the traceroute simulator's RTT
/// model; real measurements only ever inflate it.
pub fn min_rtt_ms(distance_km: f64) -> f64 {
    debug_assert!(distance_km >= 0.0, "negative distance");
    distance_km * 2.0 / FIBER_SPEED_KM_PER_MS
}

/// Destination point: start at `origin`, travel `distance_km` along the
/// initial `bearing_deg` (clockwise from north) on a great circle.
///
/// Used by `routergeo-world` to place cities inside a country's disk and
/// routers near their city centres. The result is wrapped into valid
/// coordinate ranges.
pub fn destination(origin: &Coordinate, bearing_deg: f64, distance_km: f64) -> Coordinate {
    let ang = distance_km / EARTH_RADIUS_KM;
    let brg = bearing_deg.to_radians();
    let lat1 = origin.lat_rad();
    let lon1 = origin.lon_rad();
    let lat2 = (lat1.sin() * ang.cos() + lat1.cos() * ang.sin() * brg.cos()).asin();
    let lon2 =
        lon1 + (brg.sin() * ang.sin() * lat1.cos()).atan2(ang.cos() - lat1.sin() * lat2.sin());
    Coordinate::wrapped(lat2.to_degrees(), lon2.to_degrees())
}

/// Initial great-circle bearing from `a` to `b`, degrees clockwise from
/// north in [0, 360).
pub fn bearing_deg(a: &Coordinate, b: &Coordinate) -> f64 {
    let (lat1, lon1) = (a.lat_rad(), a.lon_rad());
    let (lat2, lon2) = (b.lat_rad(), b.lon_rad());
    let dlon = lon2 - lon1;
    let y = dlon.sin() * lat2.cos();
    let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
    (y.atan2(x).to_degrees() + 360.0) % 360.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(lat: f64, lon: f64) -> Coordinate {
        Coordinate::new(lat, lon).unwrap()
    }

    #[test]
    fn zero_distance_for_identical_points() {
        let p = c(48.8566, 2.3522);
        assert_eq!(haversine_km(&p, &p), 0.0);
    }

    #[test]
    fn known_distance_paris_london() {
        // Paris (48.8566, 2.3522) to London (51.5074, -0.1278) ≈ 344 km.
        let d = haversine_km(&c(48.8566, 2.3522), &c(51.5074, -0.1278));
        assert!((d - 344.0).abs() < 5.0, "got {d}");
    }

    #[test]
    fn known_distance_ny_la() {
        // New York to Los Angeles ≈ 3936 km.
        let d = haversine_km(&c(40.7128, -74.0060), &c(34.0522, -118.2437));
        assert!((d - 3936.0).abs() < 20.0, "got {d}");
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let d = haversine_km(&c(0.0, 0.0), &c(0.0, 180.0));
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "got {d}, expected {half}");
    }

    #[test]
    fn paper_threshold_gives_fifty_km() {
        let d = rtt_to_max_distance_km(0.5);
        assert!((d - 50.0).abs() < 0.1, "0.5ms should bound ~50km, got {d}");
    }

    #[test]
    fn min_rtt_inverts_max_distance() {
        for km in [1.0, 50.0, 1234.5, 10_000.0] {
            let rtt = min_rtt_ms(km);
            let back = rtt_to_max_distance_km(rtt);
            assert!((back - km).abs() < 1e-9);
        }
    }

    #[test]
    fn destination_travels_requested_distance() {
        let origin = c(10.0, 20.0);
        for (brg, dist) in [(0.0, 100.0), (90.0, 523.0), (215.0, 42.0), (359.0, 1500.0)] {
            let p = destination(&origin, brg, dist);
            let d = haversine_km(&origin, &p);
            assert!((d - dist).abs() < 0.5, "bearing {brg} dist {dist} got {d}");
        }
    }

    #[test]
    fn destination_north_increases_latitude() {
        let origin = c(0.0, 0.0);
        let p = destination(&origin, 0.0, 111.0); // ~1 degree of latitude
        assert!((p.lat() - 1.0).abs() < 0.02, "got {}", p.lat());
        assert!(p.lon().abs() < 1e-6);
    }

    #[test]
    fn bearing_eastward_is_ninety() {
        let b = bearing_deg(&c(0.0, 0.0), &c(0.0, 10.0));
        assert!((b - 90.0).abs() < 1e-6, "got {b}");
    }

    #[test]
    fn haversine_is_symmetric_on_samples() {
        let pts = [
            c(0.0, 0.0),
            c(51.0, 9.0),
            c(-33.9, 151.2),
            c(89.9, 17.0),
            c(-89.9, -17.0),
        ];
        for a in &pts {
            for b in &pts {
                let ab = haversine_km(a, b);
                let ba = haversine_km(b, a);
                assert!((ab - ba).abs() < 1e-9);
            }
        }
    }
}

//! ISO 3166-1 country codes and an embedded world country table.
//!
//! The table drives the synthetic world generator (`routergeo-world`) and
//! supplies the "default country coordinates" that both the paper (§3.2) and
//! real geolocation databases use when they only know an address's country:
//! coordinates near the geographic centre of the country, often in
//! unpopulated areas (the paper's example: N51°00′ E09°00′ for Germany).
//!
//! Centroids and radii here are approximations of the real-world values —
//! sufficient for the simulation, where they only need to be plausible and
//! mutually consistent. The `weight` column is a rough router-infrastructure
//! density used to apportion synthetic ASes, routers, and probes.

use crate::coord::Coordinate;
use crate::rir::Rir;
use std::fmt;
use std::str::FromStr;

/// An ISO 3166-1 alpha-2 country code (two upper-case ASCII letters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Construct from two bytes, validating that both are ASCII letters.
    /// Lower-case input is folded to upper-case.
    pub fn new(a: u8, b: u8) -> Option<CountryCode> {
        if a.is_ascii_alphabetic() && b.is_ascii_alphabetic() {
            Some(CountryCode([
                a.to_ascii_uppercase(),
                b.to_ascii_uppercase(),
            ]))
        } else {
            None
        }
    }

    /// Construct from a string slice of exactly two ASCII letters.
    pub fn from_str_exact(s: &str) -> Option<CountryCode> {
        let bytes = s.as_bytes();
        if bytes.len() == 2 {
            CountryCode::new(bytes[0], bytes[1])
        } else {
            None
        }
    }

    /// The two-letter code as a `&str`.
    pub fn as_str(&self) -> &str {
        // Both bytes are validated ASCII letters.
        std::str::from_utf8(&self.0).expect("country code is ASCII")
    }

    /// The raw two bytes, for binary formats.
    pub fn bytes(&self) -> [u8; 2] {
        self.0
    }

    /// Look up this country in the embedded world table.
    pub fn info(&self) -> Option<&'static CountryInfo> {
        lookup(*self)
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error when parsing a [`CountryCode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCountryError(pub String);

impl fmt::Display for ParseCountryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ISO alpha-2 country code: {:?}", self.0)
    }
}

impl std::error::Error for ParseCountryError {}

impl FromStr for CountryCode {
    type Err = ParseCountryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CountryCode::from_str_exact(s.trim()).ok_or_else(|| ParseCountryError(s.to_string()))
    }
}

/// Convenience: build a `CountryCode` from a two-letter string literal,
/// panicking on invalid input. Intended for tests and embedded tables.
pub fn cc(code: &str) -> CountryCode {
    CountryCode::from_str_exact(code)
        // xtask-allow: RG002 documented panicking constructor for static literals; fallible path is FromStr
        .unwrap_or_else(|| panic!("invalid country code literal {code:?}"))
}

/// Static description of one country in the embedded world table.
#[derive(Debug, Clone, Copy)]
pub struct CountryInfo {
    /// ISO alpha-2 code.
    pub alpha2: [u8; 2],
    /// ISO alpha-3 code.
    pub alpha3: &'static str,
    /// English short name.
    pub name: &'static str,
    /// Geographic centroid latitude (the "default country coordinate").
    pub centroid_lat: f64,
    /// Geographic centroid longitude.
    pub centroid_lon: f64,
    /// Approximate country radius in km (radius of the equal-area disk).
    pub radius_km: f64,
    /// Allocating regional Internet registry.
    pub rir: Rir,
    /// Relative router-infrastructure weight (arbitrary units).
    pub weight: u16,
}

impl CountryInfo {
    /// The country's alpha-2 code as a [`CountryCode`].
    pub fn code(&self) -> CountryCode {
        CountryCode(self.alpha2)
    }

    /// The default country centroid as a [`Coordinate`].
    ///
    /// This is the coordinate a database (or RIPE Atlas probe registration)
    /// falls back to when only the country is known — the signature the
    /// paper's probe-disqualification step looks for (§3.2).
    pub fn centroid(&self) -> Coordinate {
        Coordinate::new(self.centroid_lat, self.centroid_lon).expect("embedded centroid is valid")
    }
}

macro_rules! country {
    ($a2:literal, $a3:literal, $name:literal, $lat:expr, $lon:expr, $r:expr, $rir:ident, $w:expr) => {
        CountryInfo {
            alpha2: [$a2.as_bytes()[0], $a2.as_bytes()[1]],
            alpha3: $a3,
            name: $name,
            centroid_lat: $lat,
            centroid_lon: $lon,
            radius_km: $r,
            rir: Rir::$rir,
            weight: $w,
        }
    };
}

/// The embedded world table, sorted by alpha-2 code.
///
/// 112 countries spanning all five RIRs. Centroids approximate real
/// geographic centres; radii approximate the equal-area disk radius; weights
/// approximate relative router-infrastructure density.
pub static COUNTRIES: &[CountryInfo] = &[
    country!(
        "AE",
        "ARE",
        "United Arab Emirates",
        23.9,
        54.3,
        163.0,
        RipeNcc,
        8
    ),
    country!("AL", "ALB", "Albania", 41.1, 20.1, 96.0, RipeNcc, 2),
    country!("AM", "ARM", "Armenia", 40.2, 45.0, 97.0, RipeNcc, 2),
    country!("AO", "AGO", "Angola", -12.3, 17.5, 630.0, Afrinic, 2),
    country!("AR", "ARG", "Argentina", -34.0, -64.0, 940.0, Lacnic, 12),
    country!("AT", "AUT", "Austria", 47.6, 14.1, 163.0, RipeNcc, 12),
    country!("AU", "AUS", "Australia", -25.7, 134.5, 1565.0, Apnic, 22),
    country!("AZ", "AZE", "Azerbaijan", 40.3, 47.7, 166.0, RipeNcc, 2),
    country!(
        "BA",
        "BIH",
        "Bosnia and Herzegovina",
        44.2,
        17.8,
        127.0,
        RipeNcc,
        2
    ),
    country!("BD", "BGD", "Bangladesh", 23.7, 90.4, 217.0, Apnic, 6),
    country!("BE", "BEL", "Belgium", 50.6, 4.6, 98.0, RipeNcc, 12),
    country!("BG", "BGR", "Bulgaria", 42.7, 25.5, 188.0, RipeNcc, 9),
    country!("BO", "BOL", "Bolivia", -16.3, -63.6, 590.0, Lacnic, 2),
    country!("BR", "BRA", "Brazil", -10.8, -52.9, 1645.0, Lacnic, 30),
    country!("BW", "BWA", "Botswana", -22.2, 23.8, 430.0, Afrinic, 1),
    country!("BY", "BLR", "Belarus", 53.5, 28.0, 257.0, RipeNcc, 4),
    country!("CA", "CAN", "Canada", 56.1, -106.3, 1780.0, Arin, 34),
    country!("CH", "CHE", "Switzerland", 46.8, 8.2, 115.0, RipeNcc, 15),
    country!("CI", "CIV", "Cote d'Ivoire", 7.5, -5.5, 320.0, Afrinic, 1),
    country!("CL", "CHL", "Chile", -35.7, -71.5, 490.0, Lacnic, 8),
    country!("CM", "CMR", "Cameroon", 5.7, 12.7, 389.0, Afrinic, 1),
    country!("CN", "CHN", "China", 35.9, 104.2, 1750.0, Apnic, 60),
    country!("CO", "COL", "Colombia", 4.6, -74.1, 602.0, Lacnic, 7),
    country!("CR", "CRI", "Costa Rica", 9.7, -83.8, 128.0, Lacnic, 2),
    country!("CU", "CUB", "Cuba", 21.5, -77.8, 188.0, Lacnic, 1),
    country!("CY", "CYP", "Cyprus", 35.1, 33.2, 54.0, RipeNcc, 2),
    country!("CZ", "CZE", "Czechia", 49.8, 15.5, 158.0, RipeNcc, 12),
    country!("DE", "DEU", "Germany", 51.0, 9.0, 337.0, RipeNcc, 70),
    country!("DK", "DNK", "Denmark", 56.0, 10.0, 117.0, RipeNcc, 9),
    country!(
        "DO",
        "DOM",
        "Dominican Republic",
        18.7,
        -70.2,
        124.0,
        Lacnic,
        1
    ),
    country!("DZ", "DZA", "Algeria", 28.0, 2.6, 870.0, Afrinic, 3),
    country!("EC", "ECU", "Ecuador", -1.8, -78.2, 300.0, Lacnic, 2),
    country!("EE", "EST", "Estonia", 58.7, 25.5, 120.0, RipeNcc, 3),
    country!("EG", "EGY", "Egypt", 26.6, 29.8, 565.0, Afrinic, 7),
    country!("ES", "ESP", "Spain", 40.0, -4.0, 401.0, RipeNcc, 24),
    country!("ET", "ETH", "Ethiopia", 9.1, 39.6, 593.0, Afrinic, 1),
    country!("FI", "FIN", "Finland", 64.9, 26.0, 328.0, RipeNcc, 9),
    country!("FJ", "FJI", "Fiji", -17.7, 178.0, 76.0, Apnic, 1),
    country!("FR", "FRA", "France", 46.2, 2.2, 419.0, RipeNcc, 48),
    country!(
        "GB",
        "GBR",
        "United Kingdom",
        54.0,
        -2.0,
        278.0,
        RipeNcc,
        55
    ),
    country!("GE", "GEO", "Georgia", 42.3, 43.4, 149.0, RipeNcc, 2),
    country!("GH", "GHA", "Ghana", 7.9, -1.2, 276.0, Afrinic, 2),
    country!("GR", "GRC", "Greece", 39.0, 22.0, 205.0, RipeNcc, 8),
    country!("GT", "GTM", "Guatemala", 15.8, -90.2, 186.0, Lacnic, 1),
    country!("HK", "HKG", "Hong Kong", 22.35, 114.13, 19.0, Apnic, 12),
    country!("HN", "HND", "Honduras", 14.8, -86.6, 189.0, Lacnic, 1),
    country!("HR", "HRV", "Croatia", 45.1, 15.2, 134.0, RipeNcc, 4),
    country!("HU", "HUN", "Hungary", 47.2, 19.5, 172.0, RipeNcc, 8),
    country!("ID", "IDN", "Indonesia", -2.5, 118.0, 780.0, Apnic, 14),
    country!("IE", "IRL", "Ireland", 53.2, -8.2, 150.0, RipeNcc, 8),
    country!("IL", "ISR", "Israel", 31.4, 35.0, 84.0, RipeNcc, 9),
    country!("IN", "IND", "India", 21.0, 78.0, 1022.0, Apnic, 36),
    country!("IQ", "IRQ", "Iraq", 33.0, 43.7, 373.0, RipeNcc, 2),
    country!("IR", "IRN", "Iran", 32.4, 53.7, 724.0, RipeNcc, 8),
    country!("IS", "ISL", "Iceland", 64.9, -18.6, 181.0, RipeNcc, 2),
    country!("IT", "ITA", "Italy", 42.8, 12.8, 310.0, RipeNcc, 40),
    country!("JM", "JAM", "Jamaica", 18.1, -77.3, 59.0, Lacnic, 1),
    country!("JO", "JOR", "Jordan", 31.3, 36.4, 169.0, RipeNcc, 2),
    country!("JP", "JPN", "Japan", 36.2, 138.3, 347.0, Apnic, 42),
    country!("KE", "KEN", "Kenya", 0.5, 37.9, 430.0, Afrinic, 3),
    country!("KG", "KGZ", "Kyrgyzstan", 41.5, 74.6, 252.0, RipeNcc, 1),
    country!("KH", "KHM", "Cambodia", 12.6, 105.0, 240.0, Apnic, 1),
    country!("KR", "KOR", "South Korea", 36.5, 127.8, 179.0, Apnic, 18),
    country!("KW", "KWT", "Kuwait", 29.3, 47.6, 75.0, RipeNcc, 2),
    country!("KZ", "KAZ", "Kazakhstan", 48.0, 66.9, 931.0, RipeNcc, 5),
    country!("LB", "LBN", "Lebanon", 33.9, 35.9, 58.0, RipeNcc, 2),
    country!("LK", "LKA", "Sri Lanka", 7.6, 80.7, 144.0, Apnic, 2),
    country!("LT", "LTU", "Lithuania", 55.2, 23.9, 144.0, RipeNcc, 4),
    country!("LU", "LUX", "Luxembourg", 49.8, 6.1, 29.0, RipeNcc, 3),
    country!("LV", "LVA", "Latvia", 56.9, 24.9, 143.0, RipeNcc, 4),
    country!("LY", "LBY", "Libya", 27.0, 17.2, 748.0, Afrinic, 1),
    country!("MA", "MAR", "Morocco", 31.9, -6.3, 377.0, Afrinic, 4),
    country!("MD", "MDA", "Moldova", 47.2, 28.5, 104.0, RipeNcc, 3),
    country!("MG", "MDG", "Madagascar", -19.4, 46.7, 432.0, Afrinic, 1),
    country!("MK", "MKD", "North Macedonia", 41.6, 21.7, 90.0, RipeNcc, 2),
    country!("MM", "MMR", "Myanmar", 21.2, 96.7, 464.0, Apnic, 1),
    country!("MN", "MNG", "Mongolia", 46.8, 103.1, 706.0, Apnic, 1),
    country!("MO", "MAC", "Macao", 22.16, 113.56, 6.0, Apnic, 1),
    country!("MT", "MLT", "Malta", 35.9, 14.4, 10.0, RipeNcc, 2),
    country!("MU", "MUS", "Mauritius", -20.3, 57.6, 25.0, Afrinic, 2),
    country!("MX", "MEX", "Mexico", 23.6, -102.5, 790.0, Lacnic, 14),
    country!("MY", "MYS", "Malaysia", 4.2, 102.0, 324.0, Apnic, 9),
    country!("MZ", "MOZ", "Mozambique", -17.3, 35.5, 505.0, Afrinic, 1),
    country!("NA", "NAM", "Namibia", -22.1, 17.2, 512.0, Afrinic, 1),
    country!("NG", "NGA", "Nigeria", 9.6, 8.1, 542.0, Afrinic, 5),
    country!("NI", "NIC", "Nicaragua", 12.9, -85.0, 204.0, Lacnic, 1),
    country!("NL", "NLD", "Netherlands", 52.1, 5.3, 115.0, RipeNcc, 38),
    country!("NO", "NOR", "Norway", 64.5, 17.0, 340.0, RipeNcc, 9),
    country!("NP", "NPL", "Nepal", 28.2, 84.0, 216.0, Apnic, 1),
    country!("NZ", "NZL", "New Zealand", -41.8, 172.8, 292.0, Apnic, 6),
    country!("OM", "OMN", "Oman", 21.0, 57.0, 314.0, RipeNcc, 1),
    country!("PA", "PAN", "Panama", 8.5, -80.8, 155.0, Lacnic, 2),
    country!("PE", "PER", "Peru", -9.2, -75.0, 640.0, Lacnic, 4),
    country!(
        "PG",
        "PNG",
        "Papua New Guinea",
        -6.5,
        145.0,
        384.0,
        Apnic,
        1
    ),
    country!("PH", "PHL", "Philippines", 12.9, 122.9, 309.0, Apnic, 7),
    country!("PK", "PAK", "Pakistan", 30.0, 69.3, 503.0, Apnic, 6),
    country!("PL", "POL", "Poland", 52.0, 19.4, 315.0, RipeNcc, 20),
    country!("PR", "PRI", "Puerto Rico", 18.2, -66.4, 53.0, Arin, 2),
    country!("PT", "PRT", "Portugal", 39.6, -8.0, 171.0, RipeNcc, 7),
    country!("PY", "PRY", "Paraguay", -23.4, -58.4, 360.0, Lacnic, 1),
    country!("QA", "QAT", "Qatar", 25.3, 51.2, 61.0, RipeNcc, 2),
    country!("RO", "ROU", "Romania", 45.9, 24.9, 275.0, RipeNcc, 12),
    country!("RS", "SRB", "Serbia", 44.2, 20.9, 167.0, RipeNcc, 4),
    country!("RU", "RUS", "Russia", 61.5, 105.3, 2330.0, RipeNcc, 40),
    country!("SA", "SAU", "Saudi Arabia", 24.2, 44.5, 827.0, RipeNcc, 6),
    country!("SE", "SWE", "Sweden", 62.2, 17.6, 378.0, RipeNcc, 16),
    country!("SG", "SGP", "Singapore", 1.35, 103.82, 15.0, Apnic, 14),
    country!("SI", "SVN", "Slovenia", 46.1, 14.8, 80.0, RipeNcc, 3),
    country!("SK", "SVK", "Slovakia", 48.7, 19.7, 125.0, RipeNcc, 5),
    country!("SN", "SEN", "Senegal", 14.4, -14.5, 250.0, Afrinic, 1),
    country!("SV", "SLV", "El Salvador", 13.8, -88.9, 82.0, Lacnic, 1),
    country!("TH", "THA", "Thailand", 15.1, 101.0, 404.0, Apnic, 9),
    country!("TJ", "TJK", "Tajikistan", 38.9, 71.3, 213.0, RipeNcc, 1),
    country!("TN", "TUN", "Tunisia", 34.1, 9.6, 228.0, Afrinic, 2),
    country!("TR", "TUR", "Turkey", 39.0, 35.0, 499.0, RipeNcc, 14),
    country!(
        "TT",
        "TTO",
        "Trinidad and Tobago",
        10.7,
        -61.2,
        40.0,
        Lacnic,
        1
    ),
    country!("TW", "TWN", "Taiwan", 23.7, 121.0, 107.0, Apnic, 10),
    country!("TZ", "TZA", "Tanzania", -6.3, 34.8, 549.0, Afrinic, 2),
    country!("UA", "UKR", "Ukraine", 48.4, 31.2, 438.0, RipeNcc, 14),
    country!("UG", "UGA", "Uganda", 1.3, 32.3, 277.0, Afrinic, 1),
    country!("US", "USA", "United States", 39.8, -98.6, 1770.0, Arin, 330),
    country!("UY", "URY", "Uruguay", -32.5, -55.8, 237.0, Lacnic, 2),
    country!("UZ", "UZB", "Uzbekistan", 41.4, 64.6, 377.0, RipeNcc, 2),
    country!("VE", "VEN", "Venezuela", 6.4, -66.6, 539.0, Lacnic, 3),
    country!("VN", "VNM", "Vietnam", 16.6, 106.3, 325.0, Apnic, 8),
    country!("ZA", "ZAF", "South Africa", -29.0, 25.1, 623.0, Afrinic, 8),
    country!("ZM", "ZMB", "Zambia", -13.5, 27.8, 489.0, Afrinic, 1),
    country!("ZW", "ZWE", "Zimbabwe", -19.0, 29.9, 353.0, Afrinic, 1),
];

/// Look up a country in the embedded table by alpha-2 code.
pub fn lookup(code: CountryCode) -> Option<&'static CountryInfo> {
    COUNTRIES
        .binary_search_by(|info| info.alpha2.cmp(&code.bytes()))
        .ok()
        .map(|i| &COUNTRIES[i])
}

/// Look up a country by alpha-3 code (linear scan; used by parsers only).
pub fn lookup_alpha3(alpha3: &str) -> Option<&'static CountryInfo> {
    let target = alpha3.trim().to_ascii_uppercase();
    COUNTRIES.iter().find(|info| info.alpha3 == target)
}

/// All countries allocated by the given RIR.
pub fn countries_in_rir(rir: Rir) -> impl Iterator<Item = &'static CountryInfo> {
    COUNTRIES.iter().filter(move |c| c.rir == rir)
}

/// Total router-infrastructure weight across the whole table.
pub fn total_weight() -> u64 {
    COUNTRIES.iter().map(|c| c.weight as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_unique() {
        for pair in COUNTRIES.windows(2) {
            assert!(
                pair[0].alpha2 < pair[1].alpha2,
                "table out of order near {}",
                pair[0].name
            );
        }
    }

    #[test]
    fn table_covers_all_rirs() {
        for rir in Rir::ALL {
            assert!(countries_in_rir(rir).count() > 0, "no countries for {rir}");
        }
    }

    #[test]
    fn all_centroids_are_valid_coordinates() {
        for info in COUNTRIES {
            let c = info.centroid();
            assert!(c.lat().abs() <= 90.0 && c.lon().abs() <= 180.0);
            assert!(info.radius_km > 0.0, "{} radius", info.name);
            assert!(info.weight > 0, "{} weight", info.name);
            assert_eq!(info.alpha3.len(), 3, "{} alpha3", info.name);
        }
    }

    #[test]
    fn lookup_finds_every_entry() {
        for info in COUNTRIES {
            let found = lookup(info.code()).expect("lookup");
            assert_eq!(found.name, info.name);
        }
    }

    #[test]
    fn lookup_misses_unknown() {
        assert!(lookup(cc("XX")).is_none());
        assert!(lookup(cc("ZZ")).is_none());
    }

    #[test]
    fn alpha3_lookup_works() {
        assert_eq!(lookup_alpha3("USA").unwrap().name, "United States");
        assert_eq!(lookup_alpha3("deu").unwrap().alpha3, "DEU");
        assert!(lookup_alpha3("XYZ").is_none());
    }

    #[test]
    fn germany_centroid_matches_paper_example() {
        // §3.2 gives N51°00′00″ E09°00′00″ as Germany's default coordinates.
        let de = lookup(cc("DE")).unwrap();
        assert_eq!(de.centroid_lat, 51.0);
        assert_eq!(de.centroid_lon, 9.0);
    }

    #[test]
    fn code_parsing() {
        assert_eq!(cc("us").as_str(), "US");
        assert!("u1".parse::<CountryCode>().is_err());
        assert!("USA".parse::<CountryCode>().is_err());
        assert!("".parse::<CountryCode>().is_err());
        assert_eq!("nl".parse::<CountryCode>().unwrap().as_str(), "NL");
    }

    #[test]
    fn fig4_top20_countries_present() {
        // Figure 4 lists the 20 countries with the most ground-truth
        // addresses; all must exist in our table.
        for code in [
            "US", "DE", "GB", "IT", "FR", "NL", "JP", "CA", "ES", "SG", "CH", "RU", "PL", "BG",
            "AU", "CZ", "SE", "RO", "UA", "HK",
        ] {
            assert!(lookup(cc(code)).is_some(), "missing {code}");
        }
    }

    #[test]
    fn us_dominates_arin_weight() {
        let us = lookup(cc("US")).unwrap();
        let arin_total: u64 = countries_in_rir(Rir::Arin).map(|c| c.weight as u64).sum();
        assert!(us.weight as u64 * 2 > arin_total, "US should dominate ARIN");
    }
}

//! Geographic primitives for the `routergeo` workspace.
//!
//! This crate provides the foundational vocabulary used everywhere else in
//! the reproduction of *"A Look at Router Geolocation in Public and
//! Commercial Databases"* (IMC 2017):
//!
//! * [`Coordinate`] — a validated WGS84 latitude/longitude pair.
//! * [`distance`] — great-circle (haversine) distance, destination-point
//!   computation, and the RTT → distance bound used by the paper's
//!   0.5 ms RTT-proximity threshold (§2.3.2).
//! * [`CountryCode`] / [`country`] — ISO 3166-1 alpha-2/alpha-3 codes and an
//!   embedded table of countries with centroids ("default country
//!   coordinates", §3.2), approximate radii, RIR membership, and router
//!   density weights used by the synthetic world generator.
//! * [`Rir`] — the five regional Internet registries the paper breaks
//!   results down by (Figure 3, Figure 5).
//! * [`cdf`] — empirical CDFs matching the distance-distribution figures
//!   (Figures 1, 2, 5).
//! * [`stats`] — small statistics helpers (percentiles, log-scale
//!   histograms) used when rendering figures as text.
//!
//! Everything here is plain data + math: no I/O, no randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod coord;
pub mod country;
pub mod distance;
pub mod rir;
pub mod stats;

pub use cdf::EmpiricalCdf;
pub use coord::{Coordinate, CoordinateError};
pub use country::{CountryCode, CountryInfo};
pub use distance::{haversine_km, rtt_to_max_distance_km, EARTH_RADIUS_KM};
pub use rir::Rir;

/// The city-range threshold from the paper's methodology (§4).
///
/// Two coordinates within this distance are considered "the same city".
/// The paper validates the choice by showing that coordinates assigned to the
/// same city by any two databases — and by databases vs the GeoNames
/// gazetteer — fall within 40 km more than 99% of the time.
pub const CITY_RANGE_KM: f64 = 40.0;

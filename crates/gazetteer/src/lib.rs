//! GeoNames-like city gazetteer (§4).
//!
//! The paper cross-checks each database's city coordinates against the
//! third-party GeoNames gazetteer — matching on (city name, region,
//! country) because city names collide — and finds the coordinates agree
//! within 40 km more than 99% of the time, confirming the databases assign
//! genuine city-level coordinates.
//!
//! The synthetic gazetteer is built from the world's cities with a small
//! independent coordinate offset, because a third-party geographical
//! database never agrees to the metre with a geolocation vendor: each
//! source digitizes "the" city point differently.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use routergeo_geo::distance::destination;
use routergeo_geo::{Coordinate, CountryCode};
use routergeo_world::World;
use std::collections::HashMap;

/// One gazetteer row.
#[derive(Debug, Clone)]
pub struct GazetteerEntry {
    /// City name as published.
    pub name: String,
    /// Admin region label.
    pub region: String,
    /// Country.
    pub country: CountryCode,
    /// The gazetteer's coordinates for the city.
    pub coord: Coordinate,
}

/// A searchable gazetteer.
#[derive(Debug, Clone)]
pub struct Gazetteer {
    entries: Vec<GazetteerEntry>,
    /// (lower-case name, country) → entry indices (name collisions are
    /// disambiguated by region).
    index: HashMap<(String, CountryCode), Vec<u32>>,
}

impl Gazetteer {
    /// Build from a world, offsetting every coordinate by up to
    /// `max_offset_km` (GeoNames and a vendor rarely agree exactly).
    pub fn from_world(world: &World, seed: u64, max_offset_km: f64) -> Gazetteer {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6A2E);
        let mut entries = Vec::with_capacity(world.cities.len());
        let mut index: HashMap<(String, CountryCode), Vec<u32>> = HashMap::new();
        for city in &world.cities {
            let bearing = rng.gen_range(0.0..360.0);
            let dist = max_offset_km * rng.gen::<f64>().sqrt();
            let coord = destination(&city.coord, bearing, dist);
            let idx = entries.len() as u32;
            entries.push(GazetteerEntry {
                name: city.name.clone(),
                region: city.region.clone(),
                country: city.country,
                coord,
            });
            index
                .entry((city.name.to_ascii_lowercase(), city.country))
                .or_default()
                .push(idx);
        }
        Gazetteer { entries, index }
    }

    /// Build directly from rows — for importing external gazetteers (and
    /// for testing name-collision handling, which `from_world` cannot
    /// produce because the generator keeps names unique).
    pub fn from_entries(entries: Vec<GazetteerEntry>) -> Gazetteer {
        let mut index: HashMap<(String, CountryCode), Vec<u32>> = HashMap::new();
        for (i, e) in entries.iter().enumerate() {
            index
                .entry((e.name.to_ascii_lowercase(), e.country))
                .or_default()
                .push(i as u32);
        }
        Gazetteer { entries, index }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the gazetteer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a city by name and country, using `region` to disambiguate
    /// homonyms when provided. Returns the unique match, or `None` when
    /// unknown or ambiguous.
    pub fn lookup(
        &self,
        name: &str,
        region: Option<&str>,
        country: CountryCode,
    ) -> Option<&GazetteerEntry> {
        let hits = self.index.get(&(name.to_ascii_lowercase(), country))?;
        match hits.len() {
            0 => None,
            1 => Some(&self.entries[hits[0] as usize]),
            _ => {
                let region = region?;
                let matching: Vec<&GazetteerEntry> = hits
                    .iter()
                    .map(|i| &self.entries[*i as usize])
                    .filter(|e| e.region.eq_ignore_ascii_case(region))
                    .collect();
                (matching.len() == 1).then(|| matching[0])
            }
        }
    }

    /// Iterate all rows.
    pub fn iter(&self) -> impl Iterator<Item = &GazetteerEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_world::WorldConfig;

    fn setup() -> (World, Gazetteer) {
        let w = World::generate(WorldConfig::tiny(121));
        let g = Gazetteer::from_world(&w, 9, 3.0);
        (w, g)
    }

    #[test]
    fn covers_every_city_within_offset() {
        let (w, g) = setup();
        assert_eq!(g.len(), w.cities.len());
        for city in &w.cities {
            let e = g
                .lookup(&city.name, Some(&city.region), city.country)
                .unwrap_or_else(|| panic!("missing {}", city.name));
            let d = e.coord.distance_km(&city.coord);
            assert!(d <= 3.5, "{} offset {d} km", city.name);
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let (w, g) = setup();
        let city = &w.cities[0];
        assert!(g
            .lookup(&city.name.to_ascii_uppercase(), None, city.country)
            .is_some());
    }

    #[test]
    fn unknown_city_misses() {
        let (w, g) = setup();
        assert!(g.lookup("Atlantis", None, w.cities[0].country).is_none());
    }

    #[test]
    fn wrong_country_misses() {
        let (w, g) = setup();
        let city = &w.cities[0];
        let other = w.cities.iter().find(|c| c.country != city.country).unwrap();
        assert!(g.lookup(&city.name, None, other.country).is_none());
    }

    #[test]
    fn homonyms_require_region_disambiguation() {
        // Two "Springfield"s in the same country — the real-world case the
        // (name, region, country) matching exists for.
        let us: CountryCode = "US".parse().unwrap();
        let mk = |region: &str, lat: f64| GazetteerEntry {
            name: "Springfield".into(),
            region: region.into(),
            country: us,
            coord: Coordinate::new(lat, -90.0).unwrap(),
        };
        let g = Gazetteer::from_entries(vec![mk("Illinois", 39.8), mk("Missouri", 37.2)]);
        // Without a region the lookup is ambiguous.
        assert!(g.lookup("Springfield", None, us).is_none());
        // With a region it resolves.
        let il = g.lookup("Springfield", Some("Illinois"), us).unwrap();
        assert!((il.coord.lat() - 39.8).abs() < 1e-9);
        let mo = g.lookup("springfield", Some("missouri"), us).unwrap();
        assert!((mo.coord.lat() - 37.2).abs() < 1e-9);
        // Unknown region: still ambiguous.
        assert!(g.lookup("Springfield", Some("Ohio"), us).is_none());
    }

    #[test]
    fn deterministic() {
        let w = World::generate(WorldConfig::tiny(122));
        let a = Gazetteer::from_world(&w, 5, 3.0);
        let b = Gazetteer::from_world(&w, 5, 3.0);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.coord, y.coord);
        }
        let c = Gazetteer::from_world(&w, 6, 3.0);
        let moved = a
            .iter()
            .zip(c.iter())
            .filter(|(x, y)| x.coord != y.coord)
            .count();
        assert!(moved > 0);
    }
}

//! Deterministic sharded worker pool — the one sanctioned concurrency
//! entry point in the workspace (enforced by xtask rule RG007).
//!
//! The model is a seed-stable map-reduce: the input is split into
//! ordered shards whose boundaries depend only on the item count and an
//! explicit shard size — never on the thread count. Each shard carries
//! its own RNG seed, derived as [`splitmix64`]`(master_seed,
//! shard_index)`, so any randomized per-shard work draws from a stream
//! that is a pure function of the shard index. Workers pull shard
//! indexes off a shared atomic counter and results are merged back in
//! shard order. Together these three properties make the merged output
//! **byte-identical across thread counts** — `ROUTERGEO_THREADS=1`,
//! `=2`, and `=8` produce the same bytes for the same seed.
//!
//! A worker panic is captured, attributed to its shard, and re-raised
//! on the calling thread as a `String` payload of the form
//! `"routergeo-pool worker panicked in shard N: <original message>"`.

use std::any::Any;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Environment variable overriding the worker count picked by
/// [`Pool::from_env`].
pub const THREADS_ENV: &str = "ROUTERGEO_THREADS";

/// The `index`-th output of a SplitMix64 stream seeded with `seed`.
///
/// This is the shard-seed derivation: `splitmix64(master, i)` equals
/// what `SplitMix64::new(master)` would produce on its `i+1`-th call,
/// but is computed in O(1) from the index so shards can be seeded out
/// of order. The constants are the reference SplitMix64 finalizer
/// (Steele, Lea & Flood 2014); golden values are pinned by unit tests
/// so a refactor cannot silently change every downstream stream.
#[must_use]
pub fn splitmix64(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One contiguous slice of the input, with its private RNG seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Position of this shard in the plan (and in the merged output).
    pub index: usize,
    /// Seed for this shard's RNG stream: `splitmix64(master, index)`.
    pub seed: u64,
    /// First item covered (inclusive).
    pub start: usize,
    /// One past the last item covered (exclusive).
    pub end: usize,
}

impl Shard {
    /// Number of items this shard covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the shard covers no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Split `items` positions into ordered shards of at most `shard_size`
/// items each, seeding every shard from `master_seed`.
///
/// Boundaries are a pure function of `(items, shard_size)` — the thread
/// count never enters — which is the invariant that keeps parallel
/// output identical to serial output. A `shard_size` of zero is
/// clamped to one; zero items yield an empty plan.
#[must_use]
pub fn plan_shards(master_seed: u64, items: usize, shard_size: usize) -> Vec<Shard> {
    let size = shard_size.max(1);
    let mut shards = Vec::with_capacity(items.div_ceil(size));
    let mut start = 0usize;
    while start < items {
        let index = shards.len();
        shards.push(Shard {
            index,
            seed: splitmix64(master_seed, index as u64),
            start,
            end: (start + size).min(items),
        });
        start = (start + size).min(items);
    }
    shards
}

/// A fixed-width scoped worker pool. Holds no threads between calls —
/// each [`run_shards`](Pool::run_shards) spins up scoped workers and
/// joins them before returning, so borrows of caller state are fine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A single-threaded pool: every shard runs inline on the caller.
    #[must_use]
    pub fn serial() -> Self {
        Pool { threads: 1 }
    }

    /// Thread count from the environment: `ROUTERGEO_THREADS` when set
    /// to a positive integer, otherwise
    /// [`std::thread::available_parallelism`] (1 if unknown).
    #[must_use]
    pub fn from_env() -> Self {
        let from_var = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1);
        let threads = from_var.unwrap_or_else(|| {
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        Pool::new(threads)
    }

    /// Number of worker threads this pool will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` once per shard of a `plan_shards(master_seed, items,
    /// shard_size)` plan and return the results **in shard order**,
    /// regardless of which worker finished which shard when.
    ///
    /// With one thread (or at most one shard) everything runs inline on
    /// the caller. If any `f` panics, the first panic (by completion
    /// order) is re-raised here with its shard index prepended; workers
    /// stop pulling new shards once a panic is observed.
    pub fn run_shards<R, F>(
        &self,
        master_seed: u64,
        items: usize,
        shard_size: usize,
        f: F,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(&Shard) -> R + Sync,
    {
        let shards = plan_shards(master_seed, items, shard_size);
        // Observability: both counters are registered here on the
        // calling thread (deterministic registration order); the
        // per-shard span carries queue-wait (entry → pickup) and run
        // time, parented under whatever span the caller has open.
        routergeo_obs::counter("pool.shards_planned").add(shards.len() as u64);
        let shards_run = routergeo_obs::counter("pool.shards_run");
        let parent = routergeo_obs::current_span();
        let clock = routergeo_obs::stopwatch();
        let observe = routergeo_obs::enabled();
        let run_one = |shard: &Shard| -> R {
            shards_run.incr();
            let _span = if observe {
                let queue_us = clock.elapsed_us();
                let mut s = routergeo_obs::span_under(parent, "pool.shard", Vec::new());
                s.attr("shard", shard.index);
                s.attr("items", shard.len());
                s.attr("queue_us", queue_us);
                s
            } else {
                routergeo_obs::SpanGuard::disabled()
            };
            f(shard)
        };

        let workers = self.threads.min(shards.len());
        if workers <= 1 {
            let mut out = Vec::with_capacity(shards.len());
            for shard in &shards {
                match catch_unwind(AssertUnwindSafe(|| run_one(shard))) {
                    Ok(r) => out.push(r),
                    Err(payload) => reraise(shard.index, &*payload),
                }
            }
            return out;
        }

        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let failure: Mutex<Option<(usize, String)>> = Mutex::new(None);
        let slots: Vec<Mutex<Option<R>>> = shards.iter().map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let ix = next.fetch_add(1, Ordering::Relaxed);
                        let Some(shard) = shards.get(ix) else { break };
                        match catch_unwind(AssertUnwindSafe(|| run_one(shard))) {
                            Ok(r) => {
                                if let Ok(mut slot) = slots[ix].lock() {
                                    *slot = Some(r);
                                }
                            }
                            Err(payload) => {
                                stop.store(true, Ordering::Relaxed);
                                if let Ok(mut fail) = failure.lock() {
                                    if fail.is_none() {
                                        *fail = Some((ix, payload_message(&*payload)));
                                    }
                                }
                            }
                        }
                    }
                });
            }
        });

        if let Some((ix, msg)) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
            panic_any(format!(
                "routergeo-pool worker panicked in shard {ix}: {msg}"
            ));
        }
        shards
            .iter()
            .zip(slots)
            .map(|(shard, slot)| {
                match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
                    Some(r) => r,
                    // Unreachable unless a worker died without reporting;
                    // fail loudly rather than return a partial merge.
                    None => panic_any(format!(
                        "routergeo-pool: shard {} produced no result",
                        shard.index
                    )),
                }
            })
            .collect()
    }

    /// Run `f` inline over every shard of the plan, in order, with the
    /// same observability accounting as [`run_shards`](Pool::run_shards)
    /// — identical `pool.shards_*` counter totals and `pool.shard`
    /// spans, so metric snapshots stay byte-identical across thread
    /// counts even when a caller takes a serial fast path.
    ///
    /// Unlike `run_shards` the closure is `FnMut` and may borrow caller
    /// state mutably: this is the escape hatch for single-threaded
    /// folds that accumulate every shard into one structure (no
    /// per-shard locals, no merge). The pool's thread count is
    /// deliberately ignored — the caller has already decided to run
    /// serially.
    pub fn for_each_shard<T, F>(&self, master_seed: u64, items: &[T], shard_size: usize, mut f: F)
    where
        F: FnMut(&Shard, &[T]),
    {
        let shards = plan_shards(master_seed, items.len(), shard_size);
        routergeo_obs::counter("pool.shards_planned").add(shards.len() as u64);
        let shards_run = routergeo_obs::counter("pool.shards_run");
        let parent = routergeo_obs::current_span();
        let clock = routergeo_obs::stopwatch();
        let observe = routergeo_obs::enabled();
        for shard in &shards {
            shards_run.incr();
            let _span = if observe {
                let queue_us = clock.elapsed_us();
                let mut s = routergeo_obs::span_under(parent, "pool.shard", Vec::new());
                s.attr("shard", shard.index);
                s.attr("items", shard.len());
                s.attr("queue_us", queue_us);
                s
            } else {
                routergeo_obs::SpanGuard::disabled()
            };
            f(shard, &items[shard.start..shard.end]);
        }
    }

    /// [`run_shards`](Pool::run_shards) over a slice: each call of `f`
    /// receives the shard descriptor plus the sub-slice it covers.
    pub fn map_shards<T, R, F>(
        &self,
        master_seed: u64,
        items: &[T],
        shard_size: usize,
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&Shard, &[T]) -> R + Sync,
    {
        self.run_shards(master_seed, items.len(), shard_size, |shard| {
            f(shard, &items[shard.start..shard.end])
        })
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

fn reraise(shard: usize, payload: &(dyn Any + Send)) -> ! {
    panic_any(format!(
        "routergeo-pool worker panicked in shard {shard}: {}",
        payload_message(payload)
    ))
}

fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference SplitMix64 outputs for seed 0 (Steele et al. 2014, as
    // pinned by the JDK SplittableRandom and the xoshiro seeding code).
    #[test]
    fn splitmix64_golden_values() {
        assert_eq!(splitmix64(0, 0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(0, 1), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(0, 2), 0x06C4_5D18_8009_454F);
        assert_eq!(splitmix64(20_170_301, 0), 0xFBAA_474C_E828_47E4);
        assert_eq!(splitmix64(20_170_301, 1), 0x7CE3_BE5B_D3B5_9CC9);
        assert_eq!(splitmix64(0xDEAD_BEEF, 7), 0xB30A_4CCF_430B_1B5A);
    }

    #[test]
    fn splitmix64_matches_sequential_stream_definition() {
        // splitmix64(seed, i) must be the i-th output of the canonical
        // sequential generator: state += GAMMA; out = mix(state).
        let seed = 0x1234_5678_9ABC_DEF0u64;
        let mut state = seed;
        for i in 0..100u64 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            assert_eq!(splitmix64(seed, i), z, "index {i}");
        }
    }

    #[test]
    fn plan_covers_input_exactly_once_in_order() {
        let shards = plan_shards(7, 10, 3);
        assert_eq!(shards.len(), 4);
        let spans: Vec<(usize, usize)> = shards.iter().map(|s| (s.start, s.end)).collect();
        assert_eq!(spans, vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.seed, splitmix64(7, i as u64));
            assert!(!s.is_empty());
        }
        assert_eq!(shards[3].len(), 1);
    }

    #[test]
    fn plan_is_independent_of_thread_count_by_construction() {
        // The planner takes no thread count at all; pin boundary cases.
        assert!(plan_shards(1, 0, 16).is_empty());
        assert_eq!(plan_shards(1, 1, 16).len(), 1); // shards > items collapse
        assert_eq!(plan_shards(1, 16, 16).len(), 1);
        assert_eq!(plan_shards(1, 17, 16).len(), 2);
        assert_eq!(plan_shards(1, 5, 0).len(), 5); // zero size clamps to 1
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = Pool::new(4);
        let out: Vec<u64> = pool.run_shards(1, 0, 8, |s| s.seed);
        assert!(out.is_empty());
        let none: Vec<usize> = pool.map_shards(1, &[] as &[u8], 8, |_, chunk| chunk.len());
        assert!(none.is_empty());
    }

    #[test]
    fn more_shards_than_items_and_more_threads_than_shards() {
        let pool = Pool::new(32);
        let items = [10u64, 20, 30];
        let out = pool.map_shards(9, &items, 1, |shard, chunk| {
            assert_eq!(chunk.len(), 1);
            chunk[0] + shard.index as u64
        });
        assert_eq!(out, vec![10, 21, 32]);
    }

    #[test]
    fn merge_order_is_input_order_at_every_thread_count() {
        let items: Vec<usize> = (0..1000).collect();
        let serial = Pool::serial().map_shards(42, &items, 7, |s, chunk| (s.index, chunk.to_vec()));
        for threads in [2, 3, 8] {
            let parallel =
                Pool::new(threads).map_shards(42, &items, 7, |s, chunk| (s.index, chunk.to_vec()));
            assert_eq!(serial, parallel, "threads={threads}");
        }
        let flat: Vec<usize> = serial.into_iter().flat_map(|(_, c)| c).collect();
        assert_eq!(flat, items, "concatenated shards reproduce the input");
    }

    #[test]
    fn shard_seeds_are_stable_across_thread_counts() {
        let seeds_at = |threads: usize| -> Vec<u64> {
            Pool::new(threads).run_shards(0xFEED, 64, 4, |s| s.seed)
        };
        let one = seeds_at(1);
        assert_eq!(one, seeds_at(2));
        assert_eq!(one, seeds_at(8));
        assert_eq!(one[0], splitmix64(0xFEED, 0));
    }

    #[test]
    fn worker_panic_is_reraised_with_shard_attribution() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run_shards(0, 10, 2, |shard| {
                    if shard.index == 3 {
                        panic!("boom in the middle");
                    }
                    shard.index
                })
            }))
            .expect_err("the pool must propagate the worker panic");
            let msg = caught
                .downcast_ref::<String>()
                .expect("pool panics carry a String payload");
            assert!(msg.contains("shard 3"), "threads={threads}: {msg}");
            assert!(msg.contains("boom in the middle"), "{msg}");
        }
    }

    #[test]
    fn from_env_clamps_to_at_least_one() {
        assert!(Pool::from_env().threads() >= 1);
        assert_eq!(Pool::new(0).threads(), 1);
    }
}

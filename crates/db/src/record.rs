//! The location record model.

use routergeo_geo::{Coordinate, CountryCode};

/// How specific the underlying database entry is — the paper's
/// "block-level (/24 block or larger) location" distinction (§5.2.3:
/// ~91% of MaxMind's wrong US city answers were block-level, vs ~78% of
/// the correct ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// The record covers a whole allocation (larger than a /24) — typical
    /// for registry-derived entries.
    Aggregate,
    /// The record covers one /24 block.
    Block24,
    /// The record derives from host-precision evidence inside the block.
    SubBlock,
}

impl Granularity {
    /// The paper's "block-level" predicate: /24 or larger.
    pub fn is_block_level(&self) -> bool {
        matches!(self, Granularity::Aggregate | Granularity::Block24)
    }

    /// Stable id for binary serialization.
    pub fn id(&self) -> u8 {
        match self {
            Granularity::Aggregate => 0,
            Granularity::Block24 => 1,
            Granularity::SubBlock => 2,
        }
    }

    /// Inverse of [`Granularity::id`].
    pub fn from_id(id: u8) -> Option<Granularity> {
        match id {
            0 => Some(Granularity::Aggregate),
            1 => Some(Granularity::Block24),
            2 => Some(Granularity::SubBlock),
            _ => None,
        }
    }
}

/// One database answer.
///
/// Field presence encodes resolution:
/// * `country` only → country-level record;
/// * `city` + `coord` → city-level record;
/// * `coord` without `city` → a coordinate fallback (e.g. a country
///   default centroid) that does **not** count as city-level coverage.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationRecord {
    /// ISO country code, if known.
    pub country: Option<CountryCode>,
    /// Admin region name, if known.
    pub region: Option<String>,
    /// City name, if the record is city-level.
    pub city: Option<String>,
    /// Coordinates, if any.
    pub coord: Option<Coordinate>,
    /// Entry granularity.
    pub granularity: Granularity,
}

impl LocationRecord {
    /// An empty (useless) record.
    pub fn empty() -> LocationRecord {
        LocationRecord {
            country: None,
            region: None,
            city: None,
            coord: None,
            granularity: Granularity::Aggregate,
        }
    }

    /// Country-level record.
    pub fn country_level(country: CountryCode, granularity: Granularity) -> LocationRecord {
        LocationRecord {
            country: Some(country),
            region: None,
            city: None,
            coord: None,
            granularity,
        }
    }

    /// Whether the record provides country-level coverage.
    pub fn has_country(&self) -> bool {
        self.country.is_some()
    }

    /// Whether the record provides city-level coverage (the paper's
    /// definition: a city name with coordinates).
    pub fn has_city(&self) -> bool {
        self.city.is_some() && self.coord.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_roundtrip_and_block_level() {
        for g in [
            Granularity::Aggregate,
            Granularity::Block24,
            Granularity::SubBlock,
        ] {
            assert_eq!(Granularity::from_id(g.id()), Some(g));
        }
        assert_eq!(Granularity::from_id(9), None);
        assert!(Granularity::Aggregate.is_block_level());
        assert!(Granularity::Block24.is_block_level());
        assert!(!Granularity::SubBlock.is_block_level());
    }

    #[test]
    fn resolution_predicates() {
        let mut r = LocationRecord::country_level("US".parse().unwrap(), Granularity::Aggregate);
        assert!(r.has_country());
        assert!(!r.has_city());
        r.city = Some("Springfield".to_string());
        assert!(!r.has_city(), "city without coords is not city-level");
        r.coord = Some(Coordinate::new(40.0, -90.0).unwrap());
        assert!(r.has_city());
        // Centroid-style: coords without city name.
        let c = LocationRecord {
            country: Some("DE".parse().unwrap()),
            region: None,
            city: None,
            coord: Some(Coordinate::new(51.0, 9.0).unwrap()),
            granularity: Granularity::Aggregate,
        };
        assert!(!c.has_city());
        assert!(!LocationRecord::empty().has_country());
    }
}

//! The zero-allocation lookup path: interned location symbols and the
//! `Copy`-able compact record.
//!
//! The analysis workload resolves every (IP, database) pair and then
//! reads only scalar facts — country, coordinates, resolution — yet the
//! owning [`LocationRecord`](crate::LocationRecord) carries its region
//! and city as `Option<String>`, so each answer costs heap allocations.
//! [`LocationInterner`] maps those strings to dense `u32` symbol ids
//! exactly once, and [`CompactRecord`] carries the ids by value, so a
//! resolved column of answers is a flat `Vec<Option<CompactRecord>>`
//! with no per-lookup allocation.
//!
//! Parallel resolution shards intern into *local* tables; the merge
//! step absorbs each local table into the global one in shard order via
//! [`LocationInterner::absorb`], producing an [`IdRemap`] that rewrites
//! shard-local ids to global ones. Because absorption walks local ids
//! in order and shards merge in shard order, the global id assignment
//! is dense and byte-identical at any thread count.

use crate::record::{Granularity, LocationRecord};
use routergeo_geo::{Coordinate, CountryCode};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// FNV-1a as a [`std::hash::Hasher`]: a handful of instructions per
/// byte, no per-hash setup cost. The resolve hot path hashes short
/// location names and small integer keys millions of times; SipHash's
/// HashDoS hardening buys nothing for these private, trusted-key maps
/// and costs most of the lookup. Not for untrusted keys.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }
}

/// [`BuildHasher`] producing [`FnvHasher`]s seeded with the FNV-1a
/// offset basis. Plug into `HashMap` as the third type parameter.
#[derive(Debug, Default, Clone)]
pub struct FnvBuildHasher;

impl BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(0xCBF2_9CE4_8422_2325)
    }
}

/// A symbol table for region/city names: each distinct string gets a
/// dense `u32` id, assigned in first-seen order.
#[derive(Debug, Default, Clone)]
pub struct LocationInterner {
    strings: Vec<String>,
    ids: HashMap<String, u32, FnvBuildHasher>,
    refs: u64,
}

impl PartialEq for LocationInterner {
    fn eq(&self, other: &Self) -> bool {
        // The id map is derived from `strings`; the ref counter is
        // bookkeeping, not identity.
        self.strings == other.strings
    }
}

impl LocationInterner {
    /// An empty interner.
    pub fn new() -> LocationInterner {
        LocationInterner::default()
    }

    /// Intern `s`, returning its id. The same string always maps to the
    /// same id; a new string gets the next dense id. This is the only
    /// place the compact path allocates, and it allocates once per
    /// *distinct* string, not once per lookup.
    pub fn intern(&mut self, s: &str) -> u32 {
        self.refs += 1;
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len())
            .expect("interner overflow: more than u32::MAX distinct location names");
        self.strings.push(s.to_string());
        self.ids.insert(s.to_string(), id);
        id
    }

    /// The string behind `id`, if assigned.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.strings.get(id as usize).map(String::as_str)
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no string has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Total [`LocationInterner::intern`] calls served — hit-or-miss —
    /// for the `resolve.interner_refs` metric.
    pub fn ref_count(&self) -> u64 {
        self.refs
    }

    /// Record one reference that resolved through a caller-side id
    /// cache instead of [`LocationInterner::intern`]. Keeps the
    /// `resolve.interner_refs` metric meaning "references", not "hash
    /// probes", when readers memoize string-offset → id mappings.
    pub fn count_ref(&mut self) {
        self.refs += 1;
    }

    /// Absorb every symbol of `local` into `self` (in `local` id order)
    /// and return the remap from `local` ids to `self` ids. Used to
    /// merge shard-local interners deterministically.
    pub fn absorb(&mut self, local: &LocationInterner) -> IdRemap {
        IdRemap {
            map: local.strings.iter().map(|s| self.intern(s)).collect(),
        }
    }
}

/// A mapping from one interner's ids to another's, produced by
/// [`LocationInterner::absorb`].
#[derive(Debug, Clone)]
pub struct IdRemap {
    map: Vec<u32>,
}

impl IdRemap {
    /// Translate a local id. Ids the remap has never seen pass through
    /// unchanged (they cannot arise from a well-formed absorb).
    pub fn apply(&self, id: u32) -> u32 {
        self.map.get(id as usize).copied().unwrap_or(id)
    }
}

/// A location answer with every field by value: country and coordinates
/// verbatim, region/city as interner ids. `Copy`, 0 heap bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactRecord {
    /// ISO country code, if known.
    pub country: Option<CountryCode>,
    /// Interned admin-region name, if known.
    pub region_id: Option<u32>,
    /// Interned city name, if the record is city-level.
    pub city_id: Option<u32>,
    /// Coordinates, if any.
    pub coord: Option<Coordinate>,
    /// Entry granularity.
    pub granularity: Granularity,
}

impl CompactRecord {
    /// Compact an owning record, interning its region/city names. Takes
    /// the record by reference: the strings are borrowed into the
    /// interner, never cloned into the result.
    pub fn from_record(rec: &LocationRecord, interner: &mut LocationInterner) -> CompactRecord {
        CompactRecord {
            country: rec.country,
            region_id: rec.region.as_deref().map(|s| interner.intern(s)),
            city_id: rec.city.as_deref().map(|s| interner.intern(s)),
            coord: rec.coord,
            granularity: rec.granularity,
        }
    }

    /// Expand back to an owning record — the exact inverse of
    /// [`CompactRecord::from_record`] under the same interner.
    pub fn to_record(self, interner: &LocationInterner) -> LocationRecord {
        LocationRecord {
            country: self.country,
            region: self
                .region_id
                .and_then(|id| interner.resolve(id))
                .map(str::to_string),
            city: self
                .city_id
                .and_then(|id| interner.resolve(id))
                .map(str::to_string),
            coord: self.coord,
            granularity: self.granularity,
        }
    }

    /// Rewrite the symbol ids through a shard-merge remap.
    pub fn remapped(self, remap: &IdRemap) -> CompactRecord {
        CompactRecord {
            region_id: self.region_id.map(|id| remap.apply(id)),
            city_id: self.city_id.map(|id| remap.apply(id)),
            ..self
        }
    }

    /// Whether the record provides country-level coverage — mirrors
    /// [`LocationRecord::has_country`].
    pub fn has_country(&self) -> bool {
        self.country.is_some()
    }

    /// Whether the record provides city-level coverage (a city name
    /// with coordinates) — mirrors [`LocationRecord::has_city`].
    pub fn has_city(&self) -> bool {
        self.city_id.is_some() && self.coord.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_ids_are_dense_stable_and_round_trip() {
        let mut i = LocationInterner::new();
        let words = ["Berlin", "Hamburg", "Berlin", "Bremen", "Hamburg", "Berlin"];
        let ids: Vec<u32> = words.iter().map(|w| i.intern(w)).collect();
        // Same string → same id, ids dense in first-seen order.
        assert_eq!(ids, vec![0, 1, 0, 2, 1, 0]);
        assert_eq!(i.len(), 3);
        assert_eq!(i.ref_count(), 6);
        // Round-trip exact.
        for (w, id) in words.iter().zip(&ids) {
            assert_eq!(i.resolve(*id), Some(*w));
        }
        assert_eq!(i.resolve(3), None);
    }

    #[test]
    fn compact_round_trips_through_the_interner() {
        let mut i = LocationInterner::new();
        let rec = LocationRecord {
            country: Some("DE".parse().unwrap()),
            region: Some("Berlin".into()),
            city: Some("Berlin".into()),
            coord: Some(Coordinate::new(52.5, 13.4).unwrap()),
            granularity: Granularity::SubBlock,
        };
        let c = CompactRecord::from_record(&rec, &mut i);
        // Region and city share one symbol.
        assert_eq!(c.region_id, Some(0));
        assert_eq!(c.city_id, Some(0));
        assert_eq!(i.len(), 1);
        assert!(c.has_country() && c.has_city());
        assert_eq!(c.to_record(&i), rec);

        let empty = LocationRecord::empty();
        let ce = CompactRecord::from_record(&empty, &mut i);
        assert!(!ce.has_country() && !ce.has_city());
        assert_eq!(ce.to_record(&i), empty);
    }

    #[test]
    fn absorb_remaps_shard_local_ids_deterministically() {
        let mut shard_a = LocationInterner::new();
        let a_x = shard_a.intern("X");
        let a_y = shard_a.intern("Y");
        let mut shard_b = LocationInterner::new();
        let b_z = shard_b.intern("Z");
        let b_y = shard_b.intern("Y");

        let mut global = LocationInterner::new();
        let ra = global.absorb(&shard_a);
        let rb = global.absorb(&shard_b);
        // Shard-order absorption: X=0, Y=1 from shard a; Z=2 new, Y
        // rebound to 1 from shard b.
        assert_eq!(ra.apply(a_x), 0);
        assert_eq!(ra.apply(a_y), 1);
        assert_eq!(rb.apply(b_z), 2);
        assert_eq!(rb.apply(b_y), 1);
        assert_eq!(global.len(), 3);

        let rec = CompactRecord {
            country: None,
            region_id: Some(b_y),
            city_id: Some(b_z),
            coord: None,
            granularity: Granularity::Aggregate,
        };
        let remapped = rec.remapped(&rb);
        assert_eq!(remapped.region_id, Some(1));
        assert_eq!(remapped.city_id, Some(2));
    }
}

//! File-backed image loading.
//!
//! [`FileImage`] reads an RGDB image straight from disk into a
//! [`Bytes`] buffer with **one** allocation and no intermediate copy:
//! the file is read in place into the final buffer (positioned
//! `read_at` on unix), and ownership of that buffer transfers into
//! `Bytes`. Serve hot-swap and the CLI open on-disk images through this
//! type instead of hand-rolled `std::fs::read` + clone chains.
//!
//! Failures are attributed: every error is an [`RgdbError::Io`] naming
//! the path, the operation (`"open"`, `"metadata"`, `"read"`), and the
//! OS error category — or, once the bytes are loaded, whatever
//! structural error [`AnyReader::open`] raises for them. Nothing in
//! this module panics on untrusted input.

use crate::rgdb::RgdbError;
use crate::rgdb2::AnyReader;
use bytes::Bytes;
use std::fs::File;
use std::path::{Path, PathBuf};

/// An RGDB image loaded from disk, ready to open or hand to a serve
/// generation. The underlying buffer is shared `Bytes`, so cloning the
/// image or passing it to a reader never copies the payload again.
#[derive(Debug, Clone)]
pub struct FileImage {
    path: PathBuf,
    bytes: Bytes,
}

impl FileImage {
    /// Read the file at `path` fully into memory. The buffer is
    /// allocated once at the file's exact size and filled in place; no
    /// intermediate `Vec` growth or copy happens on the way to `Bytes`.
    pub fn load(path: impl AsRef<Path>) -> Result<FileImage, RgdbError> {
        let path = path.as_ref();
        let io_err = |op: &'static str, kind: std::io::ErrorKind| RgdbError::Io {
            path: path.display().to_string(),
            op,
            kind,
        };
        let file = File::open(path).map_err(|e| io_err("open", e.kind()))?;
        let len = file
            .metadata()
            .map_err(|e| io_err("metadata", e.kind()))?
            .len();
        let len = usize::try_from(len)
            .map_err(|_| io_err("metadata", std::io::ErrorKind::Unsupported))?;
        let mut buf = vec![0u8; len];
        read_exact_into(&file, &mut buf).map_err(|(op, kind)| io_err(op, kind))?;
        Ok(FileImage {
            path: path.to_path_buf(),
            bytes: Bytes::from(buf),
        })
    }

    /// The path the image was loaded from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Image size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// A shared handle to the image bytes (no copy).
    pub fn bytes(&self) -> Bytes {
        self.bytes.clone()
    }

    /// Consume the image, yielding the underlying buffer (no copy).
    pub fn into_bytes(self) -> Bytes {
        self.bytes
    }

    /// Validate and open the loaded image, dispatching on its format
    /// version like [`AnyReader::open`].
    pub fn open(&self) -> Result<AnyReader, RgdbError> {
        AnyReader::open(self.bytes.clone())
    }
}

/// Fill `buf` from the start of `file`, tolerating short reads and
/// retrying on `Interrupted`. Returns the failing operation label and
/// error kind on failure. Uses positioned reads on unix so the `File`'s
/// own cursor state is irrelevant.
fn read_exact_into(file: &File, buf: &mut [u8]) -> Result<(), (&'static str, std::io::ErrorKind)> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let chunk = buf
            .get_mut(filled..)
            .ok_or(("read", std::io::ErrorKind::UnexpectedEof))?;
        let offset =
            u64::try_from(filled).map_err(|_| ("read", std::io::ErrorKind::Unsupported))?;
        match read_chunk(file, chunk, offset) {
            // A zero-length read before the buffer is full means the
            // file shrank underneath us (metadata raced a truncate).
            Ok(0) => return Err(("read", std::io::ErrorKind::UnexpectedEof)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(("read", e.kind())),
        }
    }
    Ok(())
}

#[cfg(unix)]
fn read_chunk(file: &File, chunk: &mut [u8], offset: u64) -> std::io::Result<usize> {
    use std::os::unix::fs::FileExt;
    file.read_at(chunk, offset)
}

#[cfg(not(unix))]
fn read_chunk(file: &File, chunk: &mut [u8], offset: u64) -> std::io::Result<usize> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file;
    f.seek(SeekFrom::Start(offset))?;
    f.read(chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Granularity, LocationRecord};
    use crate::rgdb::{fnv1a, Section, HEADER_LEN};
    use crate::rgdb2::write_v21;
    use crate::GeoDatabase;
    use routergeo_net::Prefix;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch path per test invocation (pid + counter), so
    /// parallel test runs never collide.
    fn scratch_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "routergeo-image-{}-{}-{}.rgdb",
            std::process::id(),
            seq,
            tag
        ))
    }

    fn sample_image() -> Bytes {
        let rec = LocationRecord {
            country: Some("US".parse().unwrap()),
            region: Some("Region".into()),
            city: Some("City".into()),
            coord: None,
            granularity: Granularity::Block24,
        };
        let entries: Vec<(Prefix, LocationRecord)> = vec![("10.1.0.0/16".parse().unwrap(), rec)];
        write_v21("file-db", entries.iter().map(|(p, r)| (*p, r)))
    }

    #[test]
    fn loads_and_opens_a_written_image() {
        let image = sample_image();
        let path = scratch_path("ok");
        std::fs::write(&path, &image).unwrap();
        let file = FileImage::load(&path).unwrap();
        assert_eq!(file.len(), image.len());
        assert_eq!(file.path(), path.as_path());
        assert!(!file.is_empty());
        let reader = file.open().unwrap();
        assert_eq!(reader.version(), 3);
        assert_eq!(reader.name(), "file-db");
        assert!(reader.lookup("10.1.2.3".parse().unwrap()).is_some());
        assert!(reader.lookup("11.1.2.3".parse().unwrap()).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unreadable_path_is_an_attributed_io_error() {
        let path = scratch_path("missing");
        let err = FileImage::load(&path).unwrap_err();
        match err {
            RgdbError::Io { path: p, op, kind } => {
                assert_eq!(op, "open");
                assert_eq!(kind, std::io::ErrorKind::NotFound);
                assert!(p.contains("routergeo-image-"), "{p}");
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_is_rejected_at_open() {
        let image = sample_image();
        let path = scratch_path("trunc");
        std::fs::write(&path, &image[..image.len() / 2]).unwrap();
        // The bytes load fine — truncation is a *structural* fault the
        // reader attributes, not an I/O fault.
        let file = FileImage::load(&path).unwrap();
        assert!(matches!(file.open(), Err(RgdbError::Truncated)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_attributed_no_panic() {
        let image = sample_image();
        let path = scratch_path("corrupt");

        // Flipped payload byte without checksum repair: checksum fires.
        let mut bytes = image.to_vec();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileImage::load(&path).unwrap().open(),
            Err(RgdbError::ChecksumMismatch)
        ));

        // Same flip with the checksum re-fixed: structural validation
        // fires with section/offset attribution (the flip above lands
        // in the root table of this small image).
        let sum = fnv1a(&bytes[HEADER_LEN..]).to_le_bytes();
        bytes[20..28].copy_from_slice(&sum);
        std::fs::write(&path, &bytes).unwrap();
        let err = FileImage::load(&path).unwrap().open().err().unwrap();
        let ctx = err.context().expect("attributed structural error");
        assert_eq!(ctx.section, Section::RootTable);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_loads_then_fails_structurally() {
        let path = scratch_path("empty");
        std::fs::write(&path, b"").unwrap();
        let file = FileImage::load(&path).unwrap();
        assert!(file.is_empty());
        assert!(matches!(file.open(), Err(RgdbError::Truncated)));
        std::fs::remove_file(&path).ok();
    }
}

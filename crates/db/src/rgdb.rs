//! RGDB — a MaxMind-style binary geolocation database format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header (28 bytes):
//!   0   magic        b"RGDB"
//!   4   version      u16      (currently 1)
//!   6   name_len     u16      database display name length
//!   8   node_count   u32      number of trie nodes
//!   12  record_count u32      number of deduplicated records
//!   16  data_len     u32      byte length of the data section
//!   20  checksum     u64      FNV-1a64 over name + nodes + data
//! name:  name_len bytes of UTF-8
//! nodes: node_count × 12 bytes: left u32, right u32, data u32
//!        (child/data value 0xFFFF_FFFF = none; data is a byte offset
//!        into the data section)
//! data:  deduplicated records, each:
//!   flags u8  (bit0 country, bit1 region, bit2 city, bit3 coord)
//!   granularity u8
//!   [country: 2 ASCII bytes]
//!   [region:  len u8 + bytes]
//!   [city:    len u8 + bytes]
//!   [coord:   lat i32 micro-degrees, lon i32 micro-degrees]
//! ```
//!
//! Lookup walks address bits MSB-first from the root node, remembering the
//! deepest node carrying a data offset — longest-prefix match, same as the
//! in-memory trie. The reader borrows a [`Bytes`] buffer and never copies
//! the node or data sections.

use crate::compact::{CompactRecord, LocationInterner};
use crate::record::{Granularity, LocationRecord};
use crate::GeoDatabase;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use routergeo_geo::{Coordinate, CountryCode};
use routergeo_net::{Prefix, PrefixTrie};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

pub(crate) const MAGIC: &[u8; 4] = b"RGDB";
const VERSION: u16 = 1;
pub(crate) const NONE: u32 = u32::MAX;
pub(crate) const HEADER_LEN: usize = 28;

/// Image region a structural error is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// The 28-byte fixed header.
    Header,
    /// The display-name bytes following the header.
    Name,
    /// The trie node array.
    Nodes,
    /// The deduplicated record data section.
    Data,
    /// The fixed-width record array (v2 images).
    Records,
    /// The interned string table (v2 images).
    Strings,
    /// The stride-16 root table (v2.1 images).
    RootTable,
}

impl Section {
    /// Lower-case label used in rendered errors.
    pub fn label(self) -> &'static str {
        match self {
            Section::Header => "header",
            Section::Name => "name",
            Section::Nodes => "nodes",
            Section::Data => "data",
            Section::Records => "records",
            Section::Strings => "strings",
            Section::RootTable => "root-table",
        }
    }
}

/// Where a structural error was detected and what the reader expected
/// to find there. `offset` is an absolute byte offset from the start of
/// the image, so a hexdump of the rejected file lines up directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptContext {
    /// Which image section the offending bytes live in.
    pub section: Section,
    /// Absolute byte offset from the start of the image.
    pub offset: usize,
    /// What the reader expected at that offset.
    pub expected: &'static str,
}

impl fmt::Display for CorruptContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} section, byte {}: expected {}",
            self.section.label(),
            self.offset,
            self.expected
        )
    }
}

/// Errors reading an RGDB image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RgdbError {
    /// Buffer shorter than the advertised layout.
    Truncated,
    /// Magic bytes missing.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Checksum mismatch — corrupt image.
    ChecksumMismatch,
    /// Structural corruption (out-of-range offsets, bad UTF-8, …),
    /// attributed to a section and absolute offset.
    Corrupt(CorruptContext),
    /// I/O failure loading an image from disk, attributed to the file
    /// path and the operation that failed. Carries the OS error
    /// category rather than the full `std::io::Error` so the error type
    /// stays `Clone + Eq` for the differential and replay harnesses.
    Io {
        /// Path of the image file.
        path: String,
        /// Operation that failed (`"open"`, `"metadata"`, `"read"`).
        op: &'static str,
        /// OS error category.
        kind: std::io::ErrorKind,
    },
}

impl RgdbError {
    /// Build a [`RgdbError::Corrupt`] with full attribution.
    pub(crate) fn corrupt(section: Section, offset: usize, expected: &'static str) -> RgdbError {
        RgdbError::Corrupt(CorruptContext {
            section,
            offset,
            expected,
        })
    }

    /// Structural-corruption context, if this error carries one.
    pub fn context(&self) -> Option<&CorruptContext> {
        match self {
            RgdbError::Corrupt(ctx) => Some(ctx),
            _ => None,
        }
    }
}

impl fmt::Display for RgdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RgdbError::Truncated => f.write_str("RGDB image truncated"),
            RgdbError::BadMagic => f.write_str("not an RGDB image (bad magic)"),
            RgdbError::BadVersion(v) => write!(f, "unsupported RGDB version {v}"),
            RgdbError::ChecksumMismatch => f.write_str("RGDB checksum mismatch"),
            RgdbError::Corrupt(ctx) => write!(f, "corrupt RGDB image: {ctx}"),
            RgdbError::Io { path, op, kind } => {
                write!(f, "RGDB image I/O failure: {op} `{path}`: {kind}")
            }
        }
    }
}

impl std::error::Error for RgdbError {}

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A stored `u32` link or offset as a slice index. `u32` always fits in
/// `usize` on the 32/64-bit targets this crate supports; the check makes
/// the conversion explicit rather than silently lossy.
#[inline]
pub(crate) fn ix(i: u32) -> usize {
    usize::try_from(i).expect("u32 image offset fits in usize")
}

/// Quantize a coordinate component to integer micro-degrees.
#[allow(clippy::cast_possible_truncation)] // bounded below; see waiver
pub(crate) fn micro_deg(deg: f64) -> i32 {
    let scaled = (deg * 1e6).round();
    // Coordinate invariants bound |deg| by 180, so the scaled value stays
    // far inside i32 range and the cast below cannot truncate.
    scaled as i32 // xtask-allow: RG003 f64->i32 bounded by Coordinate's +/-180 degree invariant; no checked float conversion exists in std
}

// ---- record (de)serialization ----------------------------------------------

fn encode_record(rec: &LocationRecord, out: &mut BytesMut) {
    let mut flags = 0u8;
    if rec.country.is_some() {
        flags |= 1;
    }
    if rec.region.is_some() {
        flags |= 2;
    }
    if rec.city.is_some() {
        flags |= 4;
    }
    if rec.coord.is_some() {
        flags |= 8;
    }
    out.put_u8(flags);
    out.put_u8(rec.granularity.id());
    if let Some(cc) = rec.country {
        out.put_slice(&cc.bytes());
    }
    if let Some(region) = &rec.region {
        put_str255(out, region.as_bytes());
    }
    if let Some(city) = &rec.city {
        put_str255(out, city.as_bytes());
    }
    if let Some(coord) = rec.coord {
        out.put_i32_le(micro_deg(coord.lat()));
        out.put_i32_le(micro_deg(coord.lon()));
    }
}

/// Write a length-prefixed string field, truncating at the format's
/// 255-byte cap.
pub(crate) fn put_str255(out: &mut BytesMut, bytes: &[u8]) {
    let take = bytes.len().min(255);
    let len = u8::try_from(take).expect("length capped at 255");
    out.put_u8(len);
    out.put_slice(bytes.get(..take).unwrap_or(bytes));
}

/// Decode one record starting at `base` — the record's absolute byte
/// offset in the image, used only to attribute errors to the exact byte
/// being read when the buffer runs dry or a field fails validation.
fn decode_record(mut buf: &[u8], base: usize) -> Result<LocationRecord, RgdbError> {
    let full = buf.len();
    // Absolute offset of the next unread byte.
    let at = |buf: &[u8]| base + (full - buf.len());
    if buf.len() < 2 {
        return Err(RgdbError::corrupt(
            Section::Data,
            at(buf),
            "2-byte record header (flags, granularity)",
        ));
    }
    let flags = buf.get_u8();
    let gran_at = at(buf);
    let gran = Granularity::from_id(buf.get_u8())
        .ok_or_else(|| RgdbError::corrupt(Section::Data, gran_at, "known granularity id"))?;
    let country = if flags & 1 != 0 {
        let cc_at = at(buf);
        if buf.len() < 2 {
            return Err(RgdbError::corrupt(
                Section::Data,
                cc_at,
                "2-byte country code",
            ));
        }
        let a = buf.get_u8();
        let b = buf.get_u8();
        Some(
            CountryCode::new(a, b)
                .ok_or_else(|| RgdbError::corrupt(Section::Data, cc_at, "ASCII country code"))?,
        )
    } else {
        None
    };
    let mut read_str = |need_len: &'static str,
                        need_bytes: &'static str,
                        need_utf8: &'static str|
     -> Result<String, RgdbError> {
        let len_at = at(buf);
        if buf.is_empty() {
            return Err(RgdbError::corrupt(Section::Data, len_at, need_len));
        }
        let len = usize::from(buf.get_u8());
        let str_at = at(buf);
        let bytes = buf
            .get(..len)
            .ok_or_else(|| RgdbError::corrupt(Section::Data, str_at, need_bytes))?;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| RgdbError::corrupt(Section::Data, str_at, need_utf8))?
            .to_string();
        buf.advance(len);
        Ok(s)
    };
    let region = if flags & 2 != 0 {
        Some(read_str(
            "region length byte",
            "region bytes within data section",
            "UTF-8 region name",
        )?)
    } else {
        None
    };
    let city = if flags & 4 != 0 {
        Some(read_str(
            "city length byte",
            "city bytes within data section",
            "UTF-8 city name",
        )?)
    } else {
        None
    };
    let coord = if flags & 8 != 0 {
        let coord_at = at(buf);
        if buf.len() < 8 {
            return Err(RgdbError::corrupt(
                Section::Data,
                coord_at,
                "8-byte coordinate pair",
            ));
        }
        let lat = f64::from(buf.get_i32_le()) / 1e6;
        let lon = f64::from(buf.get_i32_le()) / 1e6;
        Some(Coordinate::new(lat, lon).map_err(|_| {
            RgdbError::corrupt(Section::Data, coord_at, "coordinate within ±90/±180")
        })?)
    } else {
        None
    };
    Ok(LocationRecord {
        country,
        region,
        city,
        coord,
        granularity: gran,
    })
}

// ---- writer -----------------------------------------------------------------

/// Serialize `(prefix, record)` entries into an RGDB image.
///
/// Records are deduplicated by their serialized bytes — vendors repeat the
/// same record across thousands of blocks, so this is where the format
/// earns its keep.
pub fn write<'a, I>(name: &str, entries: I) -> Bytes
where
    I: IntoIterator<Item = (Prefix, &'a LocationRecord)>,
{
    // Build the trie over data offsets, deduplicating records.
    let mut data = BytesMut::new();
    let mut offsets: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut trie: PrefixTrie<u32> = PrefixTrie::new();
    for (prefix, rec) in entries {
        let mut tmp = BytesMut::new();
        encode_record(rec, &mut tmp);
        let key = tmp.to_vec();
        let offset = *offsets.entry(key).or_insert_with(|| {
            let off =
                u32::try_from(data.len()).expect("RGDB data section exceeds u32 offset space");
            data.put_slice(&tmp);
            off
        });
        trie.insert(prefix, offset);
    }

    let nodes = flatten_trie(&trie);

    let name_bytes = name.as_bytes();
    let mut payload = BytesMut::with_capacity(name_bytes.len() + nodes.len() * 12 + data.len());
    payload.put_slice(name_bytes);
    for n in &nodes {
        payload.put_u32_le(n[0]);
        payload.put_u32_le(n[1]);
        payload.put_u32_le(n[2]);
    }
    payload.put_slice(&data);
    let checksum = fnv1a(&payload);

    let mut out = BytesMut::with_capacity(HEADER_LEN + payload.len());
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    out.put_u16_le(u16::try_from(name_bytes.len()).expect("database name exceeds u16 length"));
    out.put_u32_le(u32::try_from(nodes.len()).expect("node count exceeds u32"));
    out.put_u32_le(u32::try_from(offsets.len()).expect("record count exceeds u32"));
    out.put_u32_le(u32::try_from(data.len()).expect("data length exceeds u32"));
    out.put_u64_le(checksum);
    out.put_slice(&payload);
    out.freeze()
}

/// Flatten a prefix trie into the serialized node-arena layout shared by
/// the v1 and v2 writers: `[left, right, data]` triples with
/// [`NONE`] for absent links, root at index 0. The arena in
/// [`PrefixTrie`] is not directly accessible, so rebuild: walk prefixes
/// and re-insert into a local arena with identical semantics. The
/// payload `u32` is opaque here — v1 stores data-section byte offsets,
/// v2 stores record indices.
pub(crate) fn flatten_trie(trie: &PrefixTrie<u32>) -> Vec<[u32; 3]> {
    let mut nodes: Vec<[u32; 3]> = vec![[NONE, NONE, NONE]];
    trie.walk(|prefix, payload| {
        let mut node = 0usize;
        let addr = prefix.network_u32();
        for depth in 0..prefix.len() {
            let bit = usize::from((addr >> (31 - u32::from(depth))) & 1 == 1);
            let next = node_link(&nodes, node, bit);
            let next = if next == NONE {
                let idx =
                    u32::try_from(nodes.len()).expect("RGDB node section exceeds u32 link space");
                nodes.push([NONE, NONE, NONE]);
                set_node_link(&mut nodes, node, bit, idx);
                idx
            } else {
                next
            };
            node = ix(next);
        }
        set_node_link(&mut nodes, node, 2, *payload);
    });
    nodes
}

/// Read one writer-arena link. Every `node`/`slot` pair here comes from
/// an index the arena itself handed out, so a miss is a builder bug.
#[inline]
fn node_link(nodes: &[[u32; 3]], node: usize, slot: usize) -> u32 {
    *nodes
        .get(node)
        .and_then(|n| n.get(slot))
        .expect("arena link in bounds by construction")
}

/// Write one writer-arena link; same invariant as [`node_link`].
#[inline]
fn set_node_link(nodes: &mut [[u32; 3]], node: usize, slot: usize, value: u32) {
    *nodes
        .get_mut(node)
        .and_then(|n| n.get_mut(slot))
        .expect("arena link in bounds by construction") = value;
}

// ---- reader -----------------------------------------------------------------

/// Zero-copy reader over an RGDB image.
///
/// The data section is parsed lazily, **exactly once per distinct
/// offset**: each offset owns a once-initialized slot, so a reader
/// serving millions of lookups performs exactly
/// [`RgdbReader::decoded_offsets`] parses over its lifetime — under any
/// number of threads. Parsing runs *outside* the cache lock (the lock
/// only hands out slots); threads racing a cold offset serialize on
/// that offset's slot alone, and the losers are served the winner's
/// record like any cache hit.
pub struct RgdbReader {
    image: Bytes,
    name: String,
    nodes_start: usize,
    node_count: u32,
    data_start: usize,
    data_len: usize,
    record_count: u32,
    /// Decode-once index: data-section offset → once-initialized decode
    /// slot. The `Arc` lets the probing guard drop before the slot
    /// initializes, keeping the parse outside the map lock.
    decoded: Mutex<HashMap<u32, Arc<OnceLock<Result<LocationRecord, RgdbError>>>>>,
    parses: AtomicU64,
    cache_hits: AtomicU64,
}

impl RgdbReader {
    /// Validate and open an image.
    pub fn open(image: Bytes) -> Result<RgdbReader, RgdbError> {
        let mut h = image.get(..HEADER_LEN).ok_or(RgdbError::Truncated)?;
        let mut magic = [0u8; 4];
        h.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(RgdbError::BadMagic);
        }
        let version = h.get_u16_le();
        if version != VERSION {
            return Err(RgdbError::BadVersion(version));
        }
        let name_len = usize::from(h.get_u16_le());
        let node_count = h.get_u32_le();
        let record_count = h.get_u32_le();
        let data_len = ix(h.get_u32_le());
        let checksum = h.get_u64_le();

        let nodes_start = HEADER_LEN + name_len;
        let nodes_len = ix(node_count) * 12;
        let data_start = nodes_start + nodes_len;
        let expected_total = data_start + data_len;
        if image.len() != expected_total {
            return Err(RgdbError::Truncated);
        }
        let payload = image.get(HEADER_LEN..).ok_or(RgdbError::Truncated)?;
        if fnv1a(payload) != checksum {
            return Err(RgdbError::ChecksumMismatch);
        }
        if node_count == 0 {
            // Byte 8 is the node_count field in the fixed header.
            return Err(RgdbError::corrupt(
                Section::Header,
                8,
                "nonzero node count (trie needs a root)",
            ));
        }
        let name_bytes = image
            .get(HEADER_LEN..nodes_start)
            .ok_or(RgdbError::Truncated)?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| RgdbError::corrupt(Section::Name, HEADER_LEN, "UTF-8 database name"))?
            .to_string();
        Ok(RgdbReader {
            image,
            name,
            nodes_start,
            node_count,
            data_start,
            data_len,
            record_count,
            decoded: Mutex::new(HashMap::new()),
            parses: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        })
    }

    /// Number of deduplicated records in the data section.
    pub fn record_count(&self) -> u32 {
        self.record_count
    }

    /// Total image size in bytes.
    pub fn image_len(&self) -> usize {
        self.image.len()
    }

    #[inline]
    fn node(&self, idx: u32) -> Result<(u32, u32, u32), RgdbError> {
        let at = self.nodes_start + ix(idx) * 12;
        if idx >= self.node_count {
            return Err(RgdbError::corrupt(
                Section::Nodes,
                at,
                "node link within node_count",
            ));
        }
        let mut b = self
            .image
            .get(at..at + 12)
            .ok_or_else(|| RgdbError::corrupt(Section::Nodes, at, "12-byte node in bounds"))?;
        Ok((b.get_u32_le(), b.get_u32_le(), b.get_u32_le()))
    }

    /// Walk the trie MSB-first and return the deepest data offset on the
    /// path together with its depth — the longest-prefix match (and its
    /// prefix length), not yet decoded.
    fn deepest_match(&self, ip: Ipv4Addr) -> Result<Option<(u32, u8)>, RgdbError> {
        let addr = u32::from(ip);
        let mut node = 0u32;
        let mut best: Option<(u32, u8)> = None;
        for depth in 0..=32u32 {
            let (left, right, data) = self.node(node)?;
            if data != NONE {
                best = Some((data, u8::try_from(depth).expect("trie depth <= 32")));
            }
            if depth == 32 {
                break;
            }
            let bit = (addr >> (31 - depth)) & 1;
            let next = if bit == 0 { left } else { right };
            if next == NONE {
                break;
            }
            node = next;
        }
        Ok(best)
    }

    /// Walk the trie MSB-first and return the deepest data offset on the
    /// path — the longest-prefix match, not yet decoded.
    fn deepest_offset(&self, ip: Ipv4Addr) -> Result<Option<u32>, RgdbError> {
        Ok(self.deepest_match(ip)?.map(|(off, _)| off))
    }

    /// Prefix length of the longest match for `ip`, without decoding the
    /// record. `None` when no prefix on the walk carries data. This is
    /// the trie-walk depth the serving cost model keys on: a /28 match
    /// costs a deeper walk than a /12 match.
    pub fn match_len(&self, ip: Ipv4Addr) -> Result<Option<u8>, RgdbError> {
        Ok(self.deepest_match(ip)?.map(|(_, len)| len))
    }

    /// Slice out and parse the record at data offset `off` — the one
    /// place `decode_record` is reached from lookups.
    fn decode_at(&self, off: u32) -> Result<LocationRecord, RgdbError> {
        let at = ix(off);
        let abs = self.data_start + at;
        if at >= self.data_len {
            return Err(RgdbError::corrupt(
                Section::Data,
                abs,
                "record offset within data section",
            ));
        }
        let slice = self
            .image
            .get(abs..self.data_start + self.data_len)
            .ok_or_else(|| {
                RgdbError::corrupt(Section::Data, abs, "record bytes within image bounds")
            })?;
        decode_record(slice, abs)
    }

    /// Run `f` against the decoded record at data offset `off`, parsing
    /// the data section **exactly once per distinct offset** — under any
    /// number of threads: every call after the first borrows the cached
    /// outcome. Failed parses are cached too, so a corrupt offset is
    /// parsed once and keeps surfacing the same error.
    ///
    /// The map lock only hands out the per-offset slot (RG011: parsing
    /// untrusted bytes under the mutex would serialize every reader on
    /// the slowest cold miss). Decoding runs inside the slot's
    /// once-initializer, so threads racing the same cold offset
    /// serialize on that slot alone and exactly one of them parses.
    fn with_decoded<R>(
        &self,
        off: u32,
        f: impl FnOnce(&LocationRecord) -> R,
    ) -> Result<R, RgdbError> {
        // Short-lived guard: fetch or create this offset's slot.
        let slot = {
            let mut cache = match self.decoded.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            Arc::clone(cache.entry(off).or_default())
        };
        if let Some(outcome) = slot.get() {
            // Fast path: already published.
            return match outcome {
                Ok(rec) => {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    routergeo_obs::counter("resolve.rgdb_decode_cached").incr();
                    Ok(f(rec))
                }
                Err(e) => Err(e.clone()),
            };
        }
        let mut parsed_here = false;
        let outcome = slot.get_or_init(|| {
            // xtask-allow: RG011 `slot` is the per-offset Arc<OnceLock>, not the map guard — the mutex was released at the fetch block's end
            let result = self.decode_at(off);
            if result.is_ok() {
                parsed_here = true;
                self.parses.fetch_add(1, Ordering::Relaxed);
                routergeo_obs::counter("resolve.rgdb_decode_parses").incr();
            }
            result
        });
        match outcome {
            Ok(rec) => {
                if !parsed_here {
                    // Lost the initialization race: served the winner's
                    // record, a cache hit like any other.
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    routergeo_obs::counter("resolve.rgdb_decode_cached").incr();
                }
                Ok(f(rec))
            }
            Err(e) => Err(e.clone()),
        }
    }

    /// Longest-prefix-match lookup returning a parse error on corruption.
    pub fn try_lookup(&self, ip: Ipv4Addr) -> Result<Option<LocationRecord>, RgdbError> {
        match self.deepest_offset(ip)? {
            None => Ok(None),
            Some(off) => self.with_decoded(off, LocationRecord::clone).map(Some),
        }
    }

    /// Distinct data offsets successfully decoded so far — the
    /// decode-once cache size (offsets whose parse failed are excluded).
    pub fn decoded_offsets(&self) -> usize {
        let cache = match self.decoded.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        cache
            .values()
            .filter(|slot| matches!(slot.get(), Some(Ok(_))))
            .count()
    }

    /// Total successful `decode_record` parses performed. **Exactly
    /// equals** [`RgdbReader::decoded_offsets`] at every quiescent
    /// point, no matter how many threads raced cold offsets: the
    /// per-offset once-slot guarantees one parse per distinct offset.
    pub fn decode_parses(&self) -> u64 {
        self.parses.load(Ordering::Relaxed)
    }

    /// Lookups answered from the decode-once cache without re-parsing.
    pub fn decode_cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }
}

impl GeoDatabase for RgdbReader {
    fn name(&self) -> &str {
        &self.name
    }

    fn lookup(&self, ip: Ipv4Addr) -> Option<LocationRecord> {
        // Images validated at open; treat latent corruption as a miss.
        self.try_lookup(ip).ok().flatten()
    }

    fn lookup_compact(
        &self,
        ip: Ipv4Addr,
        interner: &mut LocationInterner,
    ) -> Option<CompactRecord> {
        // Native compact path: compact straight off the cached decode —
        // after the first decode of an offset, no allocation per call.
        let off = self.deepest_offset(ip).ok().flatten()?;
        self.with_decoded(off, |rec| CompactRecord::from_record(rec, interner))
            .ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<(Prefix, LocationRecord)> {
        let city = LocationRecord {
            country: Some("US".parse().unwrap()),
            region: Some("USA Region 1".into()),
            city: Some("Springfield".into()),
            coord: Some(Coordinate::new(39.8, -89.6).unwrap()),
            granularity: Granularity::SubBlock,
        };
        let country = LocationRecord::country_level("DE".parse().unwrap(), Granularity::Aggregate);
        let centroid = LocationRecord {
            country: Some("FR".parse().unwrap()),
            region: None,
            city: None,
            coord: Some(Coordinate::new(46.2, 2.2).unwrap()),
            granularity: Granularity::Block24,
        };
        vec![
            ("6.0.0.0/24".parse().unwrap(), city),
            ("31.0.0.0/16".parse().unwrap(), country),
            ("31.0.1.0/24".parse().unwrap(), centroid),
        ]
    }

    fn build() -> RgdbReader {
        let recs = sample_records();
        let image = write("Test-DB", recs.iter().map(|(p, r)| (*p, r)));
        RgdbReader::open(image).unwrap()
    }

    #[test]
    fn roundtrip_lookups() {
        let db = build();
        assert_eq!(db.name(), "Test-DB");
        let r = db.lookup("6.0.0.200".parse().unwrap()).unwrap();
        assert_eq!(r.city.as_deref(), Some("Springfield"));
        assert_eq!(r.granularity, Granularity::SubBlock);
        let c = r.coord.unwrap();
        assert!((c.lat() - 39.8).abs() < 1e-5);
        // Longest-prefix: /24 centroid inside the /16 country record.
        let r = db.lookup("31.0.1.7".parse().unwrap()).unwrap();
        assert!(r.coord.is_some() && r.city.is_none());
        let r = db.lookup("31.0.99.1".parse().unwrap()).unwrap();
        assert_eq!(r.country.unwrap().as_str(), "DE");
        assert!(db.lookup("99.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn match_len_reports_longest_prefix_depth() {
        let db = build();
        // /24 city record.
        assert_eq!(
            db.match_len("6.0.0.200".parse().unwrap()).unwrap(),
            Some(24)
        );
        // /24 centroid nested inside the /16 country record.
        assert_eq!(db.match_len("31.0.1.7".parse().unwrap()).unwrap(), Some(24));
        // Only the /16 covers this address.
        assert_eq!(
            db.match_len("31.0.99.1".parse().unwrap()).unwrap(),
            Some(16)
        );
        // No match at all.
        assert_eq!(db.match_len("99.0.0.1".parse().unwrap()).unwrap(), None);
    }

    #[test]
    fn records_are_deduplicated() {
        let rec = LocationRecord::country_level("US".parse().unwrap(), Granularity::Block24);
        let entries: Vec<(Prefix, LocationRecord)> = (0..100)
            .map(|i| {
                let p: Prefix = format!("6.0.{i}.0/24").parse().unwrap();
                (p, rec.clone())
            })
            .collect();
        let image = write("dedup", entries.iter().map(|(p, r)| (*p, r)));
        let db = RgdbReader::open(image).unwrap();
        assert_eq!(db.record_count(), 1);
    }

    #[test]
    fn detects_truncation() {
        let recs = sample_records();
        let image = write("t", recs.iter().map(|(p, r)| (*p, r)));
        for cut in [0, 3, HEADER_LEN - 1, image.len() - 1] {
            let sliced = image.slice(..cut);
            assert!(
                RgdbReader::open(sliced).is_err(),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn detects_corruption() {
        let recs = sample_records();
        let image = write("t", recs.iter().map(|(p, r)| (*p, r)));
        // Flip one byte in the payload.
        let mut bytes = image.to_vec();
        let n = bytes.len();
        bytes[n - 3] ^= 0xFF;
        assert!(matches!(
            RgdbReader::open(Bytes::from(bytes)),
            Err(RgdbError::ChecksumMismatch)
        ));

        // Bad magic.
        let mut bytes = image.to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            RgdbReader::open(Bytes::from(bytes)),
            Err(RgdbError::BadMagic)
        ));

        // Bad version.
        let mut bytes = image.to_vec();
        bytes[4] = 0xFF;
        assert!(matches!(
            RgdbReader::open(Bytes::from(bytes)),
            Err(RgdbError::BadVersion(_))
        ));
    }

    #[test]
    fn corruption_errors_carry_section_and_offset() {
        let recs = sample_records();
        let image = write("Test-DB", recs.iter().map(|(p, r)| (*p, r)));
        // Invalidate the first name byte (0xFF is never valid UTF-8) and
        // re-fix the checksum so the structural check is what fires.
        let mut bytes = image.to_vec();
        bytes[HEADER_LEN] = 0xFF;
        let sum = fnv1a(&bytes[HEADER_LEN..]).to_le_bytes();
        bytes[20..28].copy_from_slice(&sum);
        let err = match RgdbReader::open(Bytes::from(bytes)) {
            Err(e) => e,
            Ok(_) => panic!("invalid name must not open"),
        };
        let ctx = *err.context().expect("structural error carries context");
        assert_eq!(ctx.section, Section::Name);
        assert_eq!(ctx.offset, HEADER_LEN);
        let shown = err.to_string();
        assert!(shown.contains("name section"), "got: {shown}");
        assert!(shown.contains("byte 28"), "got: {shown}");
    }

    #[test]
    fn empty_database_is_valid() {
        let image = write("empty", std::iter::empty());
        let db = RgdbReader::open(image).unwrap();
        assert!(db.lookup("1.2.3.4".parse().unwrap()).is_none());
        assert_eq!(db.record_count(), 0);
    }

    #[test]
    fn default_route_record() {
        let rec = LocationRecord::country_level("US".parse().unwrap(), Granularity::Aggregate);
        let entries = [(Prefix::default_route(), rec)];
        let image = write("all", entries.iter().map(|(p, r)| (*p, r)));
        let db = RgdbReader::open(image).unwrap();
        assert!(db.lookup("255.255.255.255".parse().unwrap()).is_some());
        assert!(db.lookup("0.0.0.0".parse().unwrap()).is_some());
    }

    #[test]
    fn data_section_is_decoded_once_per_distinct_offset() {
        let db = build();
        // 3 distinct records in the sample image, hit repeatedly through
        // both the owning and the compact path.
        let ips: Vec<Ipv4Addr> = ["6.0.0.200", "31.0.1.7", "31.0.99.1", "99.0.0.1"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let mut interner = LocationInterner::new();
        for _ in 0..50 {
            for ip in &ips {
                let owned = db.lookup(*ip);
                let compact = db.lookup_compact(*ip, &mut interner);
                assert_eq!(owned, compact.map(|c| c.to_record(&interner)));
            }
        }
        // The decode counter tracks distinct data offsets, not lookups:
        // 600 answered lookups, 3 parses.
        assert_eq!(db.decoded_offsets(), 3);
        assert_eq!(db.decode_parses(), 3);
        assert_eq!(db.decode_cache_hits(), 50 * 3 * 2 - 3);

        // A deduplicated image decodes its single record exactly once no
        // matter how many prefixes point at it.
        let rec = LocationRecord::country_level("US".parse().unwrap(), Granularity::Block24);
        let entries: Vec<(Prefix, LocationRecord)> = (0..100)
            .map(|i| {
                let p: Prefix = format!("6.0.{i}.0/24").parse().unwrap();
                (p, rec.clone())
            })
            .collect();
        let image = write("dedup", entries.iter().map(|(p, r)| (*p, r)));
        let db = RgdbReader::open(image).unwrap();
        for i in 0..100u32 {
            let ip = Ipv4Addr::from(0x0600_0001u32 + (i << 8));
            assert!(db.lookup_compact(ip, &mut interner).is_some());
        }
        assert_eq!(db.decode_parses(), 1);
        assert_eq!(db.decoded_offsets(), 1);
    }

    #[test]
    fn cold_cache_parses_each_offset_exactly_once_across_threads() {
        // Many threads hammer the same three *cold* offsets at once. The
        // per-offset once-slot must keep the parse count at exactly one
        // per distinct offset — the racing losers are cache hits.
        for round in 0..8 {
            let db = build();
            let ips: Vec<Ipv4Addr> = ["6.0.0.200", "31.0.1.7", "31.0.99.1"]
                .iter()
                .map(|s| s.parse().unwrap())
                .collect();
            let threads = 8;
            let per_thread = 64;
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let db = &db;
                    let ips = &ips;
                    scope.spawn(move || {
                        let mut interner = LocationInterner::new();
                        for i in 0..per_thread {
                            // Interleave so every thread starts on a
                            // different offset, maximizing collisions.
                            for ip in ips.iter().cycle().skip(t + i).take(ips.len()) {
                                assert!(db.lookup_compact(*ip, &mut interner).is_some());
                            }
                        }
                    });
                }
            });
            let total = u64::try_from(threads * per_thread * ips.len()).unwrap();
            assert_eq!(db.decode_parses(), 3, "round {round}");
            assert_eq!(db.decoded_offsets(), 3, "round {round}");
            assert_eq!(db.decode_cache_hits(), total - 3, "round {round}");
        }
    }

    #[test]
    fn host_route_records() {
        let rec = LocationRecord::country_level("JP".parse().unwrap(), Granularity::SubBlock);
        let entries = [("1.2.3.4/32".parse::<Prefix>().unwrap(), rec)];
        let image = write("host", entries.iter().map(|(p, r)| (*p, r)));
        let db = RgdbReader::open(image).unwrap();
        assert!(db.lookup("1.2.3.4".parse().unwrap()).is_some());
        assert!(db.lookup("1.2.3.5".parse().unwrap()).is_none());
    }
}

//! Per-block signal computation shared across vendors.

use super::CorpusId;
use routergeo_dns::{hostname, GenericDecoder};
use routergeo_geo::CountryCode;
use routergeo_world::addressing::BlockInfo;
use routergeo_world::{CityId, InterfaceId, OperatorKind, World};

/// What kind of network a block serves — measurement corpora cover
/// eyeball/edge space far better than backbones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Single-city edge network.
    Stub,
    /// National/regional carrier.
    DomesticTransit,
    /// Worldwide backbone.
    GlobalTransit,
}

/// Deterministic mix for per-(stream, block) draws.
fn mix(seed: u64, salt: u64, block: u32) -> u64 {
    let mut z = seed
        ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (block as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(v: u64) -> f64 {
    (v >> 11) as f64 / (1u64 << 53) as f64
}

/// A measurement-corpus estimate for one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Estimated city.
    pub city: CityId,
    /// Whether the evidence is host-precision (sub-block granularity).
    pub host_precision: bool,
}

/// Precomputed signal access over one world.
pub struct SignalWorld<'w> {
    world: &'w World,
    decoder: GenericDecoder,
    /// `/24 network >> 8` → index in the plan's block list.
    block_idx: std::collections::HashMap<u32, u32>,
    /// Representative interface per block (the one a DNS miner would hit).
    block_iface: Vec<Option<InterfaceId>>,
    seed: u64,
}

impl<'w> SignalWorld<'w> {
    /// Precompute signal inputs for a world.
    pub fn new(world: &'w World) -> SignalWorld<'w> {
        let block_idx: std::collections::HashMap<u32, u32> = world
            .plan()
            .blocks()
            .iter()
            .enumerate()
            .map(|(i, b)| (b.block.network_u32() >> 8, i as u32))
            .collect();
        let mut block_iface: Vec<Option<InterfaceId>> = vec![None; world.plan().len()];
        // Every interface belongs to exactly one block; record the first
        // interface seen per block.
        for (idx, iface) in world.interfaces.iter().enumerate() {
            if let Some(bidx) = block_idx.get(&(u32::from(iface.ip) >> 8)) {
                let slot = &mut block_iface[*bidx as usize];
                if slot.is_none() {
                    *slot = Some(InterfaceId(idx as u32));
                }
            }
        }
        SignalWorld {
            world,
            decoder: GenericDecoder::new(world),
            block_idx,
            block_iface,
            seed: world.config.seed,
        }
    }

    /// Index of a block in the plan's block list.
    fn block_index(&self, info: &BlockInfo) -> usize {
        self.block_idx[&(info.block.network_u32() >> 8)] as usize
    }

    /// The world under evaluation.
    pub fn world(&self) -> &'w World {
        self.world
    }

    /// Registry signal: (org country, HQ city). Identical for every vendor.
    pub fn registry(&self, info: &BlockInfo) -> (CountryCode, CityId) {
        (info.registry_country, info.registry_city)
    }

    /// Whether the block serves transit (backbone) rather than stub/edge.
    pub fn is_transit_block(&self, info: &BlockInfo) -> bool {
        self.world.operator(info.op).kind != OperatorKind::Stub
    }

    /// The kind of network the block serves.
    pub fn block_kind(&self, info: &BlockInfo) -> BlockKind {
        match self.world.operator(info.op).kind {
            OperatorKind::Stub => BlockKind::Stub,
            OperatorKind::DomesticTransit => BlockKind::DomesticTransit,
            OperatorKind::GlobalTransit => BlockKind::GlobalTransit,
        }
    }

    /// Uniform draw from a named stream for this block — used by vendors
    /// for their own policies (coverage, city publishing).
    pub fn draw(&self, salt: u64, info: &BlockInfo) -> f64 {
        unit(mix(self.seed, salt, self.block_index(info) as u32))
    }

    /// Measurement estimate of `corpus` for the block, if the corpus's
    /// latent coverage value is below `avail`. Vendors sharing a corpus and
    /// asking with different `avail` thresholds see *nested* subsets with
    /// identical estimates — the MaxMind free/paid relationship.
    pub fn measurement(
        &self,
        corpus: CorpusId,
        avail: f64,
        info: &BlockInfo,
    ) -> Option<Measurement> {
        self.measurement_lagged(corpus, avail, 0.0, info)
    }

    /// Like [`SignalWorld::measurement`], but `lag` of the measured blocks
    /// come from an older corpus snapshot with independent (and slightly
    /// worse) estimates — how a free database edition trails the paid one
    /// built from the same corpus.
    pub fn measurement_lagged(
        &self,
        corpus: CorpusId,
        avail: f64,
        lag: f64,
        info: &BlockInfo,
    ) -> Option<Measurement> {
        self.measurement_at_epoch(corpus, avail, lag, 0, info)
    }

    /// Like [`SignalWorld::measurement_lagged`], for a later release epoch:
    /// each epoch step refreshes the evidence of a fraction of blocks
    /// ([`crate::synth::EPOCH_CHURN`]) with fresh draws from the corpus —
    /// the release-to-release drift the paper dismisses as negligible over
    /// its 50-day window (§5.2).
    pub fn measurement_at_epoch(
        &self,
        corpus: CorpusId,
        avail: f64,
        lag: f64,
        epoch: u32,
        info: &BlockInfo,
    ) -> Option<Measurement> {
        let bidx = self.block_index(info) as u32;
        let u_avail = unit(mix(self.seed, corpus.salt() ^ 0xA7A1, bidx));
        if u_avail >= avail {
            return None;
        }
        // Which epoch last refreshed this block's evidence? Walk back from
        // `epoch` until a refresh draw hits; epoch 0 is the base corpus.
        let mut evidence_epoch = 0u32;
        for e in (1..=epoch).rev() {
            let roll = unit(mix(
                self.seed,
                corpus.salt() ^ 0xE90C ^ (e as u64) << 32,
                bidx,
            ));
            if roll < crate::synth::EPOCH_CHURN {
                evidence_epoch = e;
                break;
            }
        }
        let epoch_salt = (evidence_epoch as u64) << 40;
        let stale = unit(mix(self.seed, corpus.salt() ^ 0x1A6, bidx)) < lag;
        // The stale snapshot draws from a different stream entirely.
        let salt_q = (if stale { 0x01DC0u64 } else { 0xC0 }) ^ epoch_salt;
        let u_kind = unit(mix(self.seed, corpus.salt() ^ 0x21D ^ epoch_salt, bidx));
        let host_precision = u_kind < corpus.p_host_precision() && !stale;
        let u_q = unit(mix(self.seed, corpus.salt() ^ salt_q, bidx));
        // Host-precision evidence is nearly always right; block-level
        // estimates err at the corpus rate — reduced in regions where the
        // corpus is weak (IP2Location's well-documented APNIC weakness,
        // visible in the paper's Figure 3) and in stale snapshots.
        // Corpora are built from metro-concentrated eyeball panels: blocks
        // deployed in small cities are measured noticeably worse.
        let city_weight = self.world.city(info.city).weight;
        let city_quality = if city_weight <= 4 {
            0.72
        } else if city_weight <= 15 {
            0.88
        } else {
            1.0
        };
        let q = if host_precision {
            0.97
        } else {
            corpus.q_correct()
                * corpus.regional_quality(info.rir)
                * corpus.kind_quality(self.block_kind(info))
                * city_quality
                - if stale { 0.10 } else { 0.0 }
        };
        let city = if u_q < q {
            info.city
        } else {
            self.wrong_city_salted(
                corpus,
                info,
                (if stale { 0x5BADu64 } else { 0xBAD }) ^ epoch_salt,
            )
        };
        Some(Measurement {
            city,
            host_precision,
        })
    }

    /// A wrong measurement lands near the truth more often than far away:
    /// another city in the deployment country (85%), the registry HQ city
    /// (12%), or a random city elsewhere (3%) — measurement campaigns
    /// rarely cross borders by mistake, which is what keeps cross-vendor
    /// *country* agreement high (97%+) while city-level disagreement stays
    /// large (Figure 1).
    fn wrong_city_salted(&self, corpus: CorpusId, info: &BlockInfo, salt: u64) -> CityId {
        let bidx = self.block_index(info) as u32;
        let roll = unit(mix(self.seed, corpus.salt() ^ salt, bidx));
        let pick = mix(self.seed, corpus.salt() ^ salt ^ 0x71C4, bidx);
        let country = self.world.city(info.city).country;
        let domestic: Vec<CityId> = self
            .world
            .cities_in(country)
            .iter()
            .copied()
            .filter(|c| *c != info.city)
            .collect();
        // Weak-region corpora also cross borders more often when wrong.
        let p_domestic = if corpus.regional_quality(info.rir) < 1.0 {
            0.55
        } else {
            0.85
        };
        if roll < p_domestic && !domestic.is_empty() {
            domestic[(pick % domestic.len() as u64) as usize]
        } else if roll < p_domestic + 0.12 {
            info.registry_city
        } else if roll < 0.97 {
            // A city elsewhere in the same region (cross-border neighbour).
            let rir = info.rir;
            let regional: Vec<CityId> = self
                .world
                .cities
                .iter()
                .filter(|c| {
                    c.country != country
                        && routergeo_geo::country::lookup(c.country).map(|i| i.rir) == Some(rir)
                })
                .map(|c| c.id)
                .collect();
            if regional.is_empty() {
                info.registry_city
            } else {
                regional[(pick % regional.len() as u64) as usize]
            }
        } else {
            CityId::from_index((pick % self.world.cities.len() as u64) as usize)
        }
    }

    /// DNS hint signal: decode the block's representative hostname with
    /// the greedy miner. `avail` models how much of the DNS corpus the
    /// vendor actually holds; `stale` models an outdated snapshot whose
    /// hint points at another PoP of the same operator.
    pub fn dns_hint(
        &self,
        vendor_salt: u64,
        avail: f64,
        stale: f64,
        info: &BlockInfo,
    ) -> Option<CityId> {
        let bidx = self.block_index(info) as u32;
        if unit(mix(self.seed, vendor_salt ^ 0xD45, bidx)) >= avail {
            return None;
        }
        let iface = self.block_iface[bidx as usize]?;
        let name = hostname::rdns(self.world, iface)?;
        let decoded = self.decoder.decode(&name)?;
        if unit(mix(self.seed, vendor_salt ^ 0x57A1E, bidx)) < stale {
            // Stale snapshot: the hint predates a reassignment. Renumbering
            // usually stays within the operator's national footprint (the
            // paper's example moved Dallas → Miami), so prefer another
            // presence city in the same country.
            let op = self.world.operator(info.op);
            let decoded_cc = self.world.city(decoded).country;
            let domestic: Vec<CityId> = op
                .presence
                .iter()
                .copied()
                .filter(|c| *c != decoded && self.world.city(*c).country == decoded_cc)
                .collect();
            let others: Vec<CityId> = if domestic.is_empty() {
                op.presence
                    .iter()
                    .copied()
                    .filter(|c| *c != decoded)
                    .collect()
            } else {
                domestic
            };
            if !others.is_empty() {
                let pick = mix(self.seed, vendor_salt ^ 0x0DD, bidx);
                return Some(others[(pick % others.len() as u64) as usize]);
            }
        }
        Some(decoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_world::{World, WorldConfig};

    fn setup() -> World {
        World::generate(WorldConfig::tiny(161))
    }

    #[test]
    fn measurements_are_nested_across_availability() {
        let w = setup();
        let s = SignalWorld::new(&w);
        for info in w.plan().blocks().iter().step_by(7) {
            let low = s.measurement(CorpusId::MaxMind, 0.3, info);
            let high = s.measurement(CorpusId::MaxMind, 0.7, info);
            if let Some(m) = low {
                assert_eq!(high, Some(m), "nested corpora must agree");
            }
        }
    }

    #[test]
    fn corpora_are_independent() {
        let w = setup();
        let s = SignalWorld::new(&w);
        let mut differ = 0;
        for info in w.plan().blocks().iter() {
            let a = s.measurement(CorpusId::MaxMind, 1.0, info).unwrap();
            let b = s.measurement(CorpusId::Ip2Location, 1.0, info).unwrap();
            if a != b {
                differ += 1;
            }
        }
        assert!(differ > 0, "corpora should not be identical");
    }

    #[test]
    fn measurement_mostly_correct() {
        let w = setup();
        let s = SignalWorld::new(&w);
        let mut right = 0;
        let mut total = 0;
        for info in w.plan().blocks() {
            if let Some(m) = s.measurement(CorpusId::MaxMind, 1.0, info) {
                total += 1;
                if m.city == info.city {
                    right += 1;
                }
            }
        }
        let frac = right as f64 / total as f64;
        // q_correct 0.84 × kind/region/city-size penalties lands well
        // below the raw corpus rate.
        assert!((0.55..=0.92).contains(&frac), "accuracy {frac}");
    }

    #[test]
    fn dns_hint_exists_for_hinted_operators_only() {
        let w = setup();
        let s = SignalWorld::new(&w);
        let cogent = w.operator_by_name("cogentco").unwrap();
        let gtt = w.operator_by_name("gtt").unwrap();
        let mut cogent_hits = 0;
        let mut cogent_total = 0;
        for info in w.plan().blocks() {
            let hint = s.dns_hint(1, 1.0, 0.0, info);
            if info.op == cogent {
                cogent_total += 1;
                if let Some(city) = hint {
                    assert_eq!(city, info.city, "fresh hint must be true city");
                    cogent_hits += 1;
                }
            } else if info.op == gtt {
                assert_eq!(hint, None, "opaque hostnames must not decode");
            }
        }
        assert!(
            cogent_hits * 10 >= cogent_total * 8,
            "{cogent_hits}/{cogent_total}"
        );
    }

    #[test]
    fn stale_hints_point_elsewhere() {
        let w = setup();
        let s = SignalWorld::new(&w);
        let cogent = w.operator_by_name("cogentco").unwrap();
        let mut stale_wrong = 0;
        let mut fresh_right = 0;
        for info in w.plan().blocks().iter().filter(|b| b.op == cogent) {
            let fresh = s.dns_hint(1, 1.0, 0.0, info);
            let stale = s.dns_hint(1, 1.0, 1.0, info);
            match (fresh, stale) {
                (Some(f), Some(st)) => {
                    if f == info.city {
                        fresh_right += 1;
                    }
                    if st != f {
                        stale_wrong += 1;
                    }
                }
                _ => continue,
            }
        }
        assert!(fresh_right > 0);
        assert!(stale_wrong > 0, "stale hints never moved");
    }

    #[test]
    fn draws_are_deterministic_and_uniform_ish() {
        let w = setup();
        let s = SignalWorld::new(&w);
        let blocks = w.plan().blocks();
        let mut sum = 0.0;
        for info in blocks {
            let a = s.draw(42, info);
            let b = s.draw(42, info);
            assert_eq!(a, b);
            sum += a;
        }
        let mean = sum / blocks.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}

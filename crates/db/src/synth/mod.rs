// Deterministic hash-mixing over block/city IDs truncates integers by
// design; these casts never feed the rgdb/trie lookup paths that RG003
// and clippy::cast_possible_truncation protect.
#![allow(clippy::cast_possible_truncation)]

//! Synthetic vendor databases.
//!
//! Each vendor derives a per-/24 record from four modeled signals — the
//! causes the paper identifies for database behaviour:
//!
//! 1. **Registry data** (shared): the allocating org's country and HQ
//!    city. Free and complete, but wrong whenever a multinational deploys
//!    a block outside its registry country — the §5.2.3 mechanism that
//!    pulls non-US ARIN routers to the US, and the "common incorrect
//!    source" behind the three registry-fed databases agreeing on the
//!    same wrong answers (§5.2.2).
//! 2. **Measurement corpora**: noisy city estimates with per-corpus
//!    quality, better coverage on stub/eyeball blocks than on backbone
//!    blocks (why MaxMind's city coverage is lower over the transit-heavy
//!    ground truth than over the full Ark set). The two MaxMind editions
//!    share one corpus — the paid edition simply sees more of it — which
//!    yields their 99.6% country agreement and 68% identical coordinates.
//! 3. **DNS hostname hints**: only NetAcuity's profile mines them, which
//!    is what §5.2.4 concludes from NetAcuity alone improving on the
//!    DNS-based ground truth.
//! 4. **Vendor city-coordinate tables**: each vendor places "the same"
//!    city slightly differently (within a few km), matching §4's
//!    observation that same-city coordinates across databases stay within
//!    40 km more than 99% of the time.

pub mod build;
pub mod signals;

pub use build::{build_vendor, build_vendor_with};
pub use signals::SignalWorld;

/// The four databases the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VendorId {
    /// IP2Location DB11.Lite (free).
    Ip2LocationLite,
    /// MaxMind GeoLite2 (free).
    MaxMindGeoLite,
    /// MaxMind GeoIP2 (commercial).
    MaxMindPaid,
    /// Digital Element NetAcuity (commercial).
    NetAcuity,
}

impl VendorId {
    /// All four, in the paper's figure order.
    pub const ALL: [VendorId; 4] = [
        VendorId::Ip2LocationLite,
        VendorId::MaxMindGeoLite,
        VendorId::MaxMindPaid,
        VendorId::NetAcuity,
    ];

    /// Display name as the paper abbreviates it.
    pub fn name(&self) -> &'static str {
        match self {
            VendorId::Ip2LocationLite => "IP2Location-Lite",
            VendorId::MaxMindGeoLite => "MaxMind-GeoLite",
            VendorId::MaxMindPaid => "MaxMind-Paid",
            VendorId::NetAcuity => "NetAcuity",
        }
    }
}

impl std::fmt::Display for VendorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which measurement corpus a vendor consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusId {
    /// Shared by both MaxMind editions.
    MaxMind,
    /// IP2Location's own corpus.
    Ip2Location,
    /// NetAcuity's own corpus.
    NetAcuity,
}

impl CorpusId {
    /// Hash salt separating the corpora's random streams.
    pub(crate) fn salt(&self) -> u64 {
        match self {
            CorpusId::MaxMind => 0x4D4D,
            CorpusId::Ip2Location => 0x4950,
            CorpusId::NetAcuity => 0x4E41,
        }
    }

    /// P(estimate points at the true city | estimate exists).
    pub(crate) fn q_correct(&self) -> f64 {
        match self {
            CorpusId::MaxMind => 0.84,
            CorpusId::Ip2Location => 0.68,
            CorpusId::NetAcuity => 0.80,
        }
    }

    /// P(estimate is host-precision | estimate exists) — host-precision
    /// estimates are sub-block granularity and almost always right.
    pub(crate) fn p_host_precision(&self) -> f64 {
        match self {
            CorpusId::MaxMind => 0.22,
            CorpusId::Ip2Location => 0.10,
            CorpusId::NetAcuity => 0.25,
        }
    }

    /// Regional quality multiplier on `q_correct` — models corpora that
    /// are weak in particular registries (IP2Location in APNIC, per the
    /// paper's Figure 3 breakdown).
    pub(crate) fn regional_quality(&self, rir: routergeo_geo::Rir) -> f64 {
        match (self, rir) {
            (CorpusId::Ip2Location, routergeo_geo::Rir::Apnic) => 0.55,
            _ => 1.0,
        }
    }

    /// Quality multiplier by the kind of network measured. Backbone
    /// routers are hard targets (tunnels, anycast, shared infrastructure),
    /// which is why every database's city answers degrade on the paper's
    /// transit-heavy ground truth (§5.2.1 vs §5.2.4).
    pub(crate) fn kind_quality(&self, kind: crate::synth::signals::BlockKind) -> f64 {
        use crate::synth::signals::BlockKind;
        match (self, kind) {
            (_, BlockKind::Stub) => 1.0,
            (CorpusId::NetAcuity, BlockKind::DomesticTransit) => 0.85,
            (_, BlockKind::DomesticTransit) => 0.75,
            (CorpusId::NetAcuity, BlockKind::GlobalTransit) => 0.85,
            (_, BlockKind::GlobalTransit) => 0.72,
        }
    }
}

/// City-resolution publishing policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CityPolicy {
    /// Publish a city for (almost) every record, falling back to the
    /// registry HQ city; `p_centroid` of records instead carry a bare
    /// country-centroid coordinate with no city name.
    Always {
        /// Fraction of fallback records emitted as country centroids.
        p_centroid: f64,
    },
    /// Publish a city only with measurement/DNS confidence; registry-only
    /// records keep the city with probability `p_city_from_registry`
    /// (street-address data) and are country-level otherwise.
    Confident {
        /// P(city published | registry-only record).
        p_city_from_registry: f64,
    },
}

/// A vendor's full parameterization.
#[derive(Debug, Clone)]
pub struct VendorProfile {
    /// Which database this models.
    pub id: VendorId,
    /// Measurement corpus consumed.
    pub corpus: CorpusId,
    /// P(corpus covers a stub/edge block).
    pub meas_avail_stub: f64,
    /// P(corpus covers a domestic/regional carrier block).
    pub meas_avail_domestic: f64,
    /// P(corpus covers a global backbone block).
    pub meas_avail_transit: f64,
    /// Whether the vendor mines DNS hostname hints.
    pub uses_dns: bool,
    /// P(a hint-bearing block's hints are in the vendor's DNS corpus).
    pub dns_avail: f64,
    /// P(the mined hint is stale and points at another PoP).
    pub dns_stale: f64,
    /// City publishing policy.
    pub city_policy: CityPolicy,
    /// P(any record exists for a block) — country-level coverage.
    pub record_coverage: f64,
    /// Fraction of measured blocks for which this vendor ships a *stale*
    /// estimate (an older corpus snapshot) — the free MaxMind edition lags
    /// the paid one by an update cycle, which is where their 11.4%
    /// city-level disagreements come from (Figure 1).
    pub corpus_lag: f64,
    /// Salt of the vendor's city-coordinate table (MaxMind editions share
    /// one table).
    pub coord_table_salt: u64,
    /// Share of cities for which this vendor ships the *current* city
    /// coordinates; the rest come from an older revision of the same table
    /// (still within the city, different point) — why only 68% of the two
    /// MaxMind editions' answers are coordinate-identical (§5.1).
    pub coord_table_refresh: f64,
    /// Max offset of the vendor's city coordinates from the true city
    /// centre, km.
    pub coord_jitter_km: f64,
    /// Snapshot epoch. Databases are periodically re-released; each epoch
    /// refreshes the measurement evidence for a fraction of blocks
    /// (`EPOCH_CHURN` per step). Epoch 0 is the snapshot used against the
    /// Ark set; the paper re-accessed the databases ~50 days later for the
    /// ground-truth evaluation (§5.2) and argues the drift is negligible —
    /// an argument the harness can now test.
    pub epoch: u32,
}

/// Fraction of measured blocks whose evidence is refreshed per epoch step.
pub const EPOCH_CHURN: f64 = 0.04;

impl VendorProfile {
    /// The same vendor at a later release epoch.
    pub fn at_epoch(mut self, epoch: u32) -> VendorProfile {
        self.epoch = epoch;
        self
    }

    /// The built-in profile for a database.
    pub fn preset(id: VendorId) -> VendorProfile {
        match id {
            VendorId::Ip2LocationLite => VendorProfile {
                id,
                corpus: CorpusId::Ip2Location,
                meas_avail_stub: 0.52,
                meas_avail_domestic: 0.40,
                meas_avail_transit: 0.15,
                uses_dns: false,
                dns_avail: 0.0,
                dns_stale: 0.0,
                city_policy: CityPolicy::Always { p_centroid: 0.02 },
                record_coverage: 0.9995,
                corpus_lag: 0.0,
                coord_table_salt: 0x1950,
                coord_table_refresh: 1.0,
                coord_jitter_km: 6.0,
                epoch: 0,
            },
            VendorId::MaxMindGeoLite => VendorProfile {
                id,
                corpus: CorpusId::MaxMind,
                meas_avail_stub: 0.55,
                meas_avail_domestic: 0.35,
                meas_avail_transit: 0.15,
                uses_dns: false,
                dns_avail: 0.0,
                dns_stale: 0.0,
                city_policy: CityPolicy::Confident {
                    p_city_from_registry: 0.15,
                },
                record_coverage: 0.993,
                corpus_lag: 0.22,
                coord_table_salt: 0x4D78, // shared with MaxMind-Paid
                coord_table_refresh: 0.85,
                coord_jitter_km: 4.0,
                epoch: 0,
            },
            VendorId::MaxMindPaid => VendorProfile {
                id,
                corpus: CorpusId::MaxMind,
                meas_avail_stub: 0.85,
                meas_avail_domestic: 0.55,
                meas_avail_transit: 0.19,
                uses_dns: false,
                dns_avail: 0.0,
                dns_stale: 0.0,
                city_policy: CityPolicy::Confident {
                    p_city_from_registry: 0.15,
                },
                record_coverage: 0.993,
                corpus_lag: 0.0,
                coord_table_salt: 0x4D78, // shared with MaxMind-GeoLite
                coord_table_refresh: 1.0,
                coord_jitter_km: 4.0,
                epoch: 0,
            },
            VendorId::NetAcuity => VendorProfile {
                id,
                corpus: CorpusId::NetAcuity,
                meas_avail_stub: 0.82,
                meas_avail_domestic: 0.70,
                meas_avail_transit: 0.30,
                uses_dns: true,
                dns_avail: 0.80,
                dns_stale: 0.04,
                city_policy: CityPolicy::Always { p_centroid: 0.004 },
                record_coverage: 0.9998,
                corpus_lag: 0.0,
                coord_table_salt: 0x4E41,
                coord_table_refresh: 1.0,
                coord_jitter_km: 3.0,
                epoch: 0,
            },
        }
    }

    /// All four presets in figure order.
    pub fn all_presets() -> Vec<VendorProfile> {
        VendorId::ALL.iter().map(|id| Self::preset(*id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_exist_for_all_vendors() {
        let all = VendorProfile::all_presets();
        assert_eq!(all.len(), 4);
        for (profile, id) in all.iter().zip(VendorId::ALL) {
            assert_eq!(profile.id, id);
        }
    }

    #[test]
    fn maxmind_editions_share_corpus_and_coord_table() {
        let g = VendorProfile::preset(VendorId::MaxMindGeoLite);
        let p = VendorProfile::preset(VendorId::MaxMindPaid);
        assert_eq!(g.corpus, p.corpus);
        assert_eq!(g.coord_table_salt, p.coord_table_salt);
        // Paid sees strictly more of the shared corpus.
        assert!(p.meas_avail_stub > g.meas_avail_stub);
        assert!(p.meas_avail_transit > g.meas_avail_transit);
        // Same record-coverage stream → same missing blocks.
        assert_eq!(g.record_coverage, p.record_coverage);
    }

    #[test]
    fn only_netacuity_uses_dns() {
        for profile in VendorProfile::all_presets() {
            assert_eq!(profile.uses_dns, profile.id == VendorId::NetAcuity);
        }
    }

    #[test]
    fn stub_coverage_exceeds_transit_coverage() {
        // The mechanism behind lower city coverage on the transit-heavy
        // ground truth than on the full Ark set.
        for profile in VendorProfile::all_presets() {
            assert!(profile.meas_avail_stub > profile.meas_avail_transit);
        }
    }

    #[test]
    fn vendor_names_match_paper() {
        assert_eq!(VendorId::Ip2LocationLite.name(), "IP2Location-Lite");
        assert_eq!(VendorId::MaxMindGeoLite.name(), "MaxMind-GeoLite");
        assert_eq!(VendorId::MaxMindPaid.name(), "MaxMind-Paid");
        assert_eq!(VendorId::NetAcuity.name(), "NetAcuity");
    }
}

//! Vendor database generation.

use super::signals::SignalWorld;
use super::{CityPolicy, VendorProfile};
use crate::inmem::{InMemoryDb, InMemoryDbBuilder};
use crate::record::{Granularity, LocationRecord};
use routergeo_geo::country::lookup;
use routergeo_geo::Coordinate;
use routergeo_pool::Pool;
use routergeo_world::{BlockInfo, CityId};

/// Address blocks per shard when building a vendor image in parallel.
/// Fixed (never thread-derived): every block's record is a pure hash of
/// `(vendor, block)` via [`SignalWorld`], so sharding only changes which
/// worker computes it, never what is computed.
const VENDOR_SHARD_SIZE: usize = 2048;

/// How a vendor arrived at a block's location — drives the resolution and
/// granularity of the published record.
enum Evidence {
    Dns(CityId),
    MeasHost(CityId),
    MeasBlock(CityId),
    Registry(CityId),
}

/// The vendor's own coordinates for a city: the true city centre offset by
/// a deterministic per-(table, city) jitter of at most `jitter_km`.
fn vendor_city_coord(
    world: &routergeo_world::World,
    table_salt: u64,
    refresh: f64,
    jitter_km: f64,
    city: CityId,
) -> Coordinate {
    let c = world.city(city);
    // Old-revision cities use an alternate salt: same city, different
    // digitized point (still within the jitter radius).
    let mut h = (city.0 as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
    h ^= h >> 29;
    let table_salt = if (h % 10_000) as f64 / 10_000.0 < refresh {
        table_salt
    } else {
        table_salt ^ 0x01D_7AB1E
    };
    let mut z = table_salt ^ (city.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let bearing = (z % 360_000) as f64 / 1000.0;
    let dist = jitter_km * (((z >> 20) % 10_000) as f64 / 10_000.0).sqrt();
    routergeo_geo::distance::destination(&c.coord, bearing, dist)
}

/// The record a vendor publishes for one block, or `None` when the
/// vendor's corpus misses the block. Pure in `(signals, profile, info)`
/// — every draw is a stateless hash — so blocks can be computed in any
/// order, on any worker.
fn block_record(
    signals: &SignalWorld<'_>,
    profile: &VendorProfile,
    info: &BlockInfo,
) -> Option<LocationRecord> {
    let world = signals.world();

    // Record coverage: drawn on the corpus stream so vendors sharing a
    // corpus (the MaxMind editions) miss the same blocks.
    let cov = signals.draw(profile.corpus.salt() ^ 0xC07E, info);
    if cov >= profile.record_coverage {
        return None;
    }

    // Gather evidence in the vendor's priority order.
    let dns = if profile.uses_dns {
        signals.dns_hint(
            profile.coord_table_salt,
            profile.dns_avail,
            profile.dns_stale,
            info,
        )
    } else {
        None
    };
    let avail = match signals.block_kind(info) {
        super::signals::BlockKind::Stub => profile.meas_avail_stub,
        super::signals::BlockKind::DomesticTransit => profile.meas_avail_domestic,
        super::signals::BlockKind::GlobalTransit => profile.meas_avail_transit,
    };
    let meas = signals.measurement_at_epoch(
        profile.corpus,
        avail,
        profile.corpus_lag,
        profile.epoch,
        info,
    );
    let (registry_country, registry_city) = signals.registry(info);

    let evidence = match (dns, meas) {
        (Some(city), _) => Evidence::Dns(city),
        (None, Some(m)) if m.host_precision => Evidence::MeasHost(m.city),
        (None, Some(m)) => Evidence::MeasBlock(m.city),
        (None, None) => Evidence::Registry(registry_city),
    };

    let (city, granularity, confident) = match evidence {
        Evidence::Dns(c) => (c, Granularity::SubBlock, true),
        Evidence::MeasHost(c) => (c, Granularity::SubBlock, true),
        Evidence::MeasBlock(c) => (c, Granularity::Block24, true),
        Evidence::Registry(c) => (c, Granularity::Aggregate, false),
    };

    // Country: from the evidence city when confident, from the
    // registry otherwise (the registry city *is* in the registry
    // country, but stating it explicitly keeps the mechanism visible).
    let country = if confident {
        world.city(city).country
    } else {
        registry_country
    };

    // City policy decides the published resolution.
    let publish_city = match profile.city_policy {
        CityPolicy::Always { p_centroid } => {
            if !confident && signals.draw(0x0CE2_701D, info) < p_centroid {
                // Country-centroid fallback: coordinates, no city.
                return Some(LocationRecord {
                    country: Some(country),
                    region: None,
                    city: None,
                    coord: lookup(country).map(|i| i.centroid()),
                    granularity,
                });
            }
            true
        }
        CityPolicy::Confident {
            p_city_from_registry,
        } => confident || signals.draw(0x02E6_C17F, info) < p_city_from_registry,
    };

    let record = if publish_city {
        let c = world.city(city);
        LocationRecord {
            country: Some(country),
            region: Some(c.region.clone()),
            city: Some(c.name.clone()),
            coord: Some(vendor_city_coord(
                world,
                profile.coord_table_salt,
                profile.coord_table_refresh,
                profile.coord_jitter_km,
                city,
            )),
            granularity,
        }
    } else {
        LocationRecord::country_level(country, granularity)
    };
    Some(record)
}

/// Build one vendor's database over the whole address plan. Thread
/// count from the environment ([`Pool::from_env`]).
pub fn build_vendor(signals: &SignalWorld<'_>, profile: &VendorProfile) -> InMemoryDb {
    build_vendor_with(signals, profile, &Pool::from_env())
}

/// [`build_vendor`] on an explicit pool. Shards of the block plan are
/// rendered concurrently and their `(prefix, record)` rows fed to the
/// builder in shard order — the same insertion sequence as the serial
/// loop, so the image is byte-identical at every thread count.
pub fn build_vendor_with(
    signals: &SignalWorld<'_>,
    profile: &VendorProfile,
    pool: &Pool,
) -> InMemoryDb {
    let world = signals.world();
    let blocks = world.plan().blocks();
    let mut span = routergeo_obs::span!(
        "db.synth",
        vendor = profile.id.name(),
        blocks = blocks.len()
    );
    routergeo_obs::counter("db.synth.blocks").add(blocks.len() as u64);
    let shards = pool.map_shards(0, blocks, VENDOR_SHARD_SIZE, |_, chunk| {
        chunk
            .iter()
            .filter_map(|info| block_record(signals, profile, info).map(|r| (info.block, r)))
            .collect::<Vec<_>>()
    });

    let mut builder = InMemoryDbBuilder::new(profile.id.name());
    let mut rows = 0usize;
    for (prefix, record) in shards.into_iter().flatten() {
        builder.push_prefix(prefix, record);
        rows += 1;
    }
    span.attr("rows", rows);
    builder.build().expect("plan blocks are disjoint")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::VendorId;
    use crate::GeoDatabase;
    use routergeo_geo::CITY_RANGE_KM;
    use routergeo_world::{World, WorldConfig};

    fn all_dbs(world: &World) -> Vec<InMemoryDb> {
        let signals = SignalWorld::new(world);
        VendorProfile::all_presets()
            .iter()
            .map(|p| build_vendor(&signals, p))
            .collect()
    }

    #[test]
    fn determinism() {
        let w = World::generate(WorldConfig::tiny(171));
        let signals = SignalWorld::new(&w);
        let p = VendorProfile::preset(VendorId::NetAcuity);
        let a = build_vendor(&signals, &p);
        let b = build_vendor(&signals, &p);
        for iface in w.interfaces.iter().step_by(41) {
            assert_eq!(a.lookup(iface.ip), b.lookup(iface.ip));
        }
    }

    #[test]
    fn parallel_image_is_identical_to_serial() {
        let w = World::generate(WorldConfig::tiny(178));
        let signals = SignalWorld::new(&w);
        for p in VendorProfile::all_presets() {
            let serial = build_vendor_with(&signals, &p, &Pool::serial());
            for threads in [2, 8] {
                let parallel = build_vendor_with(&signals, &p, &Pool::new(threads));
                for iface in w.interfaces.iter().step_by(17) {
                    assert_eq!(
                        serial.lookup(iface.ip),
                        parallel.lookup(iface.ip),
                        "{} threads={threads} ip={}",
                        p.id.name(),
                        iface.ip
                    );
                }
            }
        }
    }

    #[test]
    fn coverage_ordering_matches_paper() {
        // IP2Location and NetAcuity: near-perfect city coverage.
        // MaxMind: high country coverage, much lower city coverage, with
        // the paid edition above the free one.
        let w = World::generate(WorldConfig::tiny(172));
        let dbs = all_dbs(&w);
        let city_cov: Vec<f64> = dbs
            .iter()
            .map(|db| {
                let mut have = 0usize;
                for iface in &w.interfaces {
                    if db.lookup(iface.ip).map(|r| r.has_city()).unwrap_or(false) {
                        have += 1;
                    }
                }
                have as f64 / w.interfaces.len() as f64
            })
            .collect();
        let (ip2, mm_g, mm_p, neta) = (city_cov[0], city_cov[1], city_cov[2], city_cov[3]);
        assert!(ip2 > 0.9, "IP2Location city coverage {ip2}");
        assert!(neta > 0.9, "NetAcuity city coverage {neta}");
        assert!(mm_g < mm_p, "GeoLite {mm_g} !< Paid {mm_p}");
        assert!(mm_p < 0.85 && mm_g < 0.70, "MaxMind too confident");
    }

    #[test]
    fn maxmind_editions_agree_when_both_answer_cities() {
        let w = World::generate(WorldConfig::tiny(173));
        let dbs = all_dbs(&w);
        let (g, p) = (&dbs[1], &dbs[2]);
        let mut identical = 0usize;
        let mut both = 0usize;
        for iface in &w.interfaces {
            let (Some(rg), Some(rp)) = (g.lookup(iface.ip), p.lookup(iface.ip)) else {
                continue;
            };
            if rg.has_city() && rp.has_city() {
                both += 1;
                if rg.coord == rp.coord {
                    identical += 1;
                }
            }
        }
        assert!(both > 100);
        let frac = identical as f64 / both as f64;
        assert!(frac > 0.55, "identical coords only {frac}");
    }

    #[test]
    fn netacuity_wins_on_country_accuracy() {
        let w = World::generate(WorldConfig::tiny(174));
        let dbs = all_dbs(&w);
        let acc: Vec<f64> = dbs
            .iter()
            .map(|db| {
                let mut right = 0usize;
                let mut total = 0usize;
                for iface in &w.interfaces {
                    let truth = w.true_country(iface.ip).unwrap();
                    if let Some(c) = db.lookup(iface.ip).and_then(|r| r.country) {
                        total += 1;
                        if c == truth {
                            right += 1;
                        }
                    }
                }
                right as f64 / total as f64
            })
            .collect();
        let neta = acc[3];
        for (i, other) in acc.iter().enumerate().take(3) {
            assert!(
                neta > *other,
                "NetAcuity {neta} not above {} {other}",
                dbs[i].name()
            );
        }
        // All databases look decent on the full interface population
        // (stubs dominate); the paper's GT-focused numbers come from the
        // transit-heavy subset.
        assert!(acc.iter().all(|a| *a > 0.7), "{acc:?}");
    }

    #[test]
    fn registry_fallback_pulls_foreign_blocks_home() {
        // The §5.2.3 mechanism: some blocks deployed outside their
        // registry country must be located in the registry country.
        let w = World::generate(WorldConfig::tiny(175));
        let signals = SignalWorld::new(&w);
        let db = build_vendor(&signals, &VendorProfile::preset(VendorId::MaxMindPaid));
        let mut pulled = 0usize;
        for info in w.plan().blocks() {
            let deployed = w.city(info.city).country;
            if deployed == info.registry_country {
                continue;
            }
            let ip = info.block.nth(1).unwrap();
            if let Some(r) = db.lookup(ip) {
                if r.country == Some(info.registry_country) {
                    pulled += 1;
                }
            }
        }
        assert!(pulled > 0, "registry pull never happened");
    }

    #[test]
    fn city_answers_are_vendor_city_coords() {
        // A city-level answer's coordinates must be within the vendor
        // jitter of some real city of the claimed name — and the claimed
        // city name must exist.
        let w = World::generate(WorldConfig::tiny(176));
        let dbs = all_dbs(&w);
        for db in &dbs {
            for iface in w.interfaces.iter().step_by(23) {
                let Some(r) = db.lookup(iface.ip) else {
                    continue;
                };
                if !r.has_city() {
                    continue;
                }
                let name = r.city.as_deref().unwrap();
                let city = w
                    .cities
                    .iter()
                    .find(|c| c.name == name)
                    .unwrap_or_else(|| panic!("unknown city {name}"));
                let d = r.coord.unwrap().distance_km(&city.coord);
                assert!(
                    d <= CITY_RANGE_KM,
                    "{}: vendor coord {d} km from {}",
                    db.name(),
                    name
                );
            }
        }
    }

    #[test]
    fn granularity_tags_follow_evidence() {
        let w = World::generate(WorldConfig::tiny(177));
        let dbs = all_dbs(&w);
        for db in &dbs {
            let mut kinds = std::collections::HashSet::new();
            for iface in &w.interfaces {
                if let Some(r) = db.lookup(iface.ip) {
                    kinds.insert(r.granularity);
                }
            }
            assert!(
                kinds.contains(&Granularity::Aggregate),
                "{} has no registry-derived records",
                db.name()
            );
            assert!(
                kinds.contains(&Granularity::SubBlock),
                "{} has no host-precision records",
                db.name()
            );
        }
    }
}

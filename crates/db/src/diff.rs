//! Database snapshot comparison.
//!
//! Vendors re-release their databases continuously; the paper accessed
//! each database twice, ~50 days apart, and argued the drift could not
//! affect its conclusions (§5.2). This module measures drift directly:
//! compare two snapshots of a database over an address set and classify
//! every answer pair.

use crate::GeoDatabase;
use routergeo_geo::stats::ratio;
use routergeo_geo::{EmpiricalCdf, CITY_RANGE_KM};
use std::net::Ipv4Addr;

/// How one address's answer changed between two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnswerChange {
    /// Identical records.
    Unchanged,
    /// Record appeared (no record → some record).
    Added,
    /// Record disappeared.
    Removed,
    /// Country changed.
    CountryChanged,
    /// Same country, city answer moved beyond the city range.
    CityMoved,
    /// Same country, answer changed within the city range (coordinate
    /// refresh, resolution change, region rename, …).
    MinorChange,
}

/// Drift report between two snapshots of one database.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Name of the (old) database.
    pub database: String,
    /// Addresses compared.
    pub total: usize,
    /// Count per change class.
    pub unchanged: usize,
    /// Records that appeared.
    pub added: usize,
    /// Records that disappeared.
    pub removed: usize,
    /// Country flips.
    pub country_changed: usize,
    /// City-level moves beyond the city range.
    pub city_moved: usize,
    /// Changes within the city range.
    pub minor: usize,
    /// Distance distribution of coordinate moves (only pairs where both
    /// snapshots have coordinates).
    pub move_cdf: EmpiricalCdf,
}

impl DiffReport {
    /// Fraction of addresses whose answer is materially different
    /// (country flip or >40 km move).
    pub fn material_change_rate(&self) -> f64 {
        ratio(self.country_changed + self.city_moved, self.total)
    }

    /// Fraction with any change at all.
    pub fn any_change_rate(&self) -> f64 {
        ratio(self.total - self.unchanged, self.total)
    }
}

/// Classify one address across two snapshots.
pub fn classify<D1: GeoDatabase, D2: GeoDatabase>(
    old: &D1,
    new: &D2,
    ip: Ipv4Addr,
) -> (AnswerChange, Option<f64>) {
    let a = old.lookup(ip);
    let b = new.lookup(ip);
    match (a, b) {
        (None, None) => (AnswerChange::Unchanged, None),
        (None, Some(_)) => (AnswerChange::Added, None),
        (Some(_), None) => (AnswerChange::Removed, None),
        (Some(a), Some(b)) => {
            let moved = match (a.coord, b.coord) {
                (Some(ca), Some(cb)) => Some(ca.distance_km(&cb)),
                _ => None,
            };
            if a == b {
                return (AnswerChange::Unchanged, moved);
            }
            if a.country != b.country {
                return (AnswerChange::CountryChanged, moved);
            }
            match moved {
                Some(d) if d > CITY_RANGE_KM => (AnswerChange::CityMoved, moved),
                _ => (AnswerChange::MinorChange, moved),
            }
        }
    }
}

/// Diff two snapshots over an address set.
pub fn diff_databases<D1: GeoDatabase, D2: GeoDatabase>(
    old: &D1,
    new: &D2,
    ips: &[Ipv4Addr],
) -> DiffReport {
    let mut report = DiffReport {
        database: old.name().to_string(),
        total: ips.len(),
        unchanged: 0,
        added: 0,
        removed: 0,
        country_changed: 0,
        city_moved: 0,
        minor: 0,
        move_cdf: EmpiricalCdf::from_iter_lossy(std::iter::empty()).0,
    };
    let mut moves = Vec::new();
    for ip in ips {
        let (change, moved) = classify(old, new, *ip);
        if let Some(d) = moved {
            if d > 0.0 {
                moves.push(d);
            }
        }
        match change {
            AnswerChange::Unchanged => report.unchanged += 1,
            AnswerChange::Added => report.added += 1,
            AnswerChange::Removed => report.removed += 1,
            AnswerChange::CountryChanged => report.country_changed += 1,
            AnswerChange::CityMoved => report.city_moved += 1,
            AnswerChange::MinorChange => report.minor += 1,
        }
    }
    // Move distances are great-circle computations over validated
    // coordinates and cannot be NaN; the drop count is structurally 0.
    report.move_cdf = EmpiricalCdf::from_iter_lossy(moves).0;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inmem::InMemoryDbBuilder;
    use crate::record::{Granularity, LocationRecord};
    use crate::synth::{build_vendor, SignalWorld, VendorId, VendorProfile};
    use routergeo_geo::Coordinate;
    use routergeo_world::{World, WorldConfig};

    fn rec(cc: &str, lat: f64) -> LocationRecord {
        LocationRecord {
            country: Some(cc.parse().unwrap()),
            region: None,
            city: Some("X".into()),
            coord: Some(Coordinate::new(lat, 0.0).unwrap()),
            granularity: Granularity::Block24,
        }
    }

    #[test]
    fn classification_covers_all_cases() {
        let mut a = InMemoryDbBuilder::new("old");
        a.push_prefix("6.0.0.0/24".parse().unwrap(), rec("US", 40.0));
        a.push_prefix("6.0.1.0/24".parse().unwrap(), rec("US", 40.0));
        a.push_prefix("6.0.2.0/24".parse().unwrap(), rec("US", 40.0));
        a.push_prefix("6.0.3.0/24".parse().unwrap(), rec("US", 40.0));
        let a = a.build().unwrap();
        let mut b = InMemoryDbBuilder::new("new");
        b.push_prefix("6.0.0.0/24".parse().unwrap(), rec("US", 40.0)); // unchanged
        b.push_prefix("6.0.1.0/24".parse().unwrap(), rec("CA", 55.0)); // country flip
        b.push_prefix("6.0.2.0/24".parse().unwrap(), rec("US", 41.0)); // ~111 km move
                                                                       // 6.0.3.0/24 removed
        b.push_prefix("6.0.4.0/24".parse().unwrap(), rec("US", 40.0)); // added
        let b = b.build().unwrap();

        let ips: Vec<Ipv4Addr> = (0..=4)
            .map(|i| format!("6.0.{i}.9").parse().unwrap())
            .collect();
        let report = diff_databases(&a, &b, &ips);
        assert_eq!(report.unchanged, 1);
        assert_eq!(report.country_changed, 1);
        assert_eq!(report.city_moved, 1);
        assert_eq!(report.removed, 1);
        assert_eq!(report.added, 1);
        assert!((report.material_change_rate() - 0.4).abs() < 1e-12);
        assert!((report.any_change_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn minor_change_stays_within_city_range() {
        let mut a = InMemoryDbBuilder::new("old");
        a.push_prefix("6.0.0.0/24".parse().unwrap(), rec("US", 40.0));
        let a = a.build().unwrap();
        let mut b = InMemoryDbBuilder::new("new");
        b.push_prefix("6.0.0.0/24".parse().unwrap(), rec("US", 40.1)); // ~11 km
        let b = b.build().unwrap();
        let (change, moved) = classify(&a, &b, "6.0.0.1".parse().unwrap());
        assert_eq!(change, AnswerChange::MinorChange);
        assert!(moved.unwrap() < CITY_RANGE_KM);
    }

    #[test]
    fn epoch_drift_is_small_per_step() {
        // The §5.2 argument: one release cycle moves few answers.
        let w = World::generate(WorldConfig::tiny(501));
        let signals = SignalWorld::new(&w);
        let base = VendorProfile::preset(VendorId::MaxMindPaid);
        let old = build_vendor(&signals, &base);
        let new = build_vendor(&signals, &base.clone().at_epoch(1));
        let ips: Vec<Ipv4Addr> = w.interfaces.iter().map(|i| i.ip).collect();
        let report = diff_databases(&old, &new, &ips);
        let rate = report.material_change_rate();
        assert!(rate > 0.0, "epochs changed nothing");
        assert!(rate < 0.05, "one epoch moved {rate} of answers");
        // Epoch 0 vs itself: identical.
        let same = diff_databases(&old, &build_vendor(&signals, &base), &ips);
        assert_eq!(same.any_change_rate(), 0.0);
    }

    #[test]
    fn epoch_drift_accumulates() {
        let w = World::generate(WorldConfig::tiny(502));
        let signals = SignalWorld::new(&w);
        let base = VendorProfile::preset(VendorId::NetAcuity);
        let old = build_vendor(&signals, &base);
        let ips: Vec<Ipv4Addr> = w.interfaces.iter().step_by(3).map(|i| i.ip).collect();
        let one = diff_databases(
            &old,
            &build_vendor(&signals, &base.clone().at_epoch(1)),
            &ips,
        );
        let five = diff_databases(
            &old,
            &build_vendor(&signals, &base.clone().at_epoch(5)),
            &ips,
        );
        assert!(
            five.any_change_rate() > one.any_change_rate(),
            "five epochs ({}) should drift more than one ({})",
            five.any_change_rate(),
            one.any_change_rate()
        );
    }
}

//! In-memory range database — the working representation every other
//! format converts to or from.

use crate::compact::{CompactRecord, FnvBuildHasher, LocationInterner};
use crate::record::LocationRecord;
use crate::GeoDatabase;
use routergeo_net::{Prefix, RangeMap, RangeMapBuilder, RangeOverlap};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A named in-memory geolocation database over non-overlapping ranges.
#[derive(Debug, Clone)]
pub struct InMemoryDb {
    name: String,
    map: RangeMap<LocationRecord>,
}

/// Builder for [`InMemoryDb`].
#[derive(Debug, Clone)]
pub struct InMemoryDbBuilder {
    name: String,
    builder: RangeMapBuilder<LocationRecord>,
}

impl InMemoryDbBuilder {
    /// Start a database with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        InMemoryDbBuilder {
            name: name.into(),
            builder: RangeMapBuilder::new(),
        }
    }

    /// Add a record for an inclusive address range.
    pub fn push_range(
        &mut self,
        start: Ipv4Addr,
        end: Ipv4Addr,
        record: LocationRecord,
    ) -> &mut Self {
        self.builder.push(start, end, record);
        self
    }

    /// Add a record for a whole prefix.
    pub fn push_prefix(&mut self, prefix: Prefix, record: LocationRecord) -> &mut Self {
        self.builder.push_prefix(prefix, record);
        self
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.builder.len()
    }

    /// Whether nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.builder.is_empty()
    }

    /// Validate and build.
    pub fn build(self) -> Result<InMemoryDb, RangeOverlap> {
        Ok(InMemoryDb {
            name: self.name,
            map: self.builder.build()?,
        })
    }
}

impl InMemoryDb {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the database has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate `(start, end, record)` rows in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Addr, Ipv4Addr, &LocationRecord)> {
        self.map.iter()
    }
}

impl GeoDatabase for InMemoryDb {
    fn name(&self) -> &str {
        &self.name
    }

    fn lookup(&self, ip: Ipv4Addr) -> Option<LocationRecord> {
        self.map.lookup(ip).cloned()
    }

    fn lookup_compact(
        &self,
        ip: Ipv4Addr,
        interner: &mut LocationInterner,
    ) -> Option<CompactRecord> {
        // Native compact path: compact straight off the borrowed range
        // entry — the record is never cloned.
        self.map
            .lookup(ip)
            .map(|rec| CompactRecord::from_record(rec, interner))
    }

    fn lookup_batch(
        &self,
        ips: &[Ipv4Addr],
        interner: &mut LocationInterner,
    ) -> Vec<Option<CompactRecord>> {
        // Pass 1: one sorted monotone sweep over the range entries
        // resolves every address to its entry index.
        let located = self.map.locate_batch(ips);
        // Pass 2, in original order so interner id assignment matches
        // the sequential loop bit-for-bit: compact each distinct entry
        // once and replay the memo for repeats. Sorted inputs revisit
        // the entry they just left, so a one-slot cache answers most
        // repeats before the (FNV-hashed) memo map is even probed.
        let mut memo: HashMap<usize, CompactRecord, FnvBuildHasher> = HashMap::default();
        let mut last: Option<(usize, CompactRecord)> = None;
        located
            .into_iter()
            .map(|slot| {
                let idx = slot?;
                if let Some((li, hit)) = last {
                    if li == idx {
                        return Some(hit);
                    }
                }
                if let Some(hit) = memo.get(&idx) {
                    last = Some((idx, *hit));
                    return Some(*hit);
                }
                let compact = self
                    .map
                    .value_at(idx)
                    .map(|rec| CompactRecord::from_record(rec, interner))?;
                memo.insert(idx, compact);
                last = Some((idx, compact));
                Some(compact)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Granularity;

    fn rec(cc: &str) -> LocationRecord {
        LocationRecord::country_level(cc.parse().unwrap(), Granularity::Block24)
    }

    #[test]
    fn build_and_lookup() {
        let mut b = InMemoryDbBuilder::new("test-db");
        b.push_prefix("6.0.0.0/24".parse().unwrap(), rec("US"));
        b.push_prefix("31.0.0.0/24".parse().unwrap(), rec("DE"));
        let db = b.build().unwrap();
        assert_eq!(db.name(), "test-db");
        assert_eq!(db.len(), 2);
        let r = db.lookup("6.0.0.55".parse().unwrap()).unwrap();
        assert_eq!(r.country.unwrap().as_str(), "US");
        assert!(db.lookup("7.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn batched_lookups_match_sequential_ids_and_answers() {
        let mut b = InMemoryDbBuilder::new("batch-db");
        let mut r = rec("US");
        r.region = Some("Texas".into());
        r.city = Some("Dallas".into());
        b.push_prefix("6.0.0.0/24".parse().unwrap(), r);
        let mut r2 = rec("DE");
        r2.city = Some("Berlin".into());
        b.push_prefix("31.0.0.0/24".parse().unwrap(), r2);
        let db = b.build().unwrap();
        let ips: Vec<Ipv4Addr> = [
            "31.0.0.9",
            "6.0.0.1",
            "7.7.7.7",
            "6.0.0.1",
            "31.0.0.200",
            "6.0.0.255",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        let mut seq_interner = LocationInterner::new();
        let seq: Vec<_> = ips
            .iter()
            .map(|ip| db.lookup_compact(*ip, &mut seq_interner))
            .collect();
        let mut batch_interner = LocationInterner::new();
        let batch = db.lookup_batch(&ips, &mut batch_interner);
        assert_eq!(seq, batch);
        assert_eq!(seq_interner, batch_interner);
    }

    #[test]
    fn overlap_rejected() {
        let mut b = InMemoryDbBuilder::new("bad");
        b.push_prefix("6.0.0.0/24".parse().unwrap(), rec("US"));
        b.push_range(
            "6.0.0.128".parse().unwrap(),
            "6.0.1.10".parse().unwrap(),
            rec("CA"),
        );
        assert!(b.build().is_err());
    }
}

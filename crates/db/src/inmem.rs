//! In-memory range database — the working representation every other
//! format converts to or from.

use crate::compact::{CompactRecord, LocationInterner};
use crate::record::LocationRecord;
use crate::GeoDatabase;
use routergeo_net::{Prefix, RangeMap, RangeMapBuilder, RangeOverlap};
use std::net::Ipv4Addr;

/// A named in-memory geolocation database over non-overlapping ranges.
#[derive(Debug, Clone)]
pub struct InMemoryDb {
    name: String,
    map: RangeMap<LocationRecord>,
}

/// Builder for [`InMemoryDb`].
#[derive(Debug, Clone)]
pub struct InMemoryDbBuilder {
    name: String,
    builder: RangeMapBuilder<LocationRecord>,
}

impl InMemoryDbBuilder {
    /// Start a database with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        InMemoryDbBuilder {
            name: name.into(),
            builder: RangeMapBuilder::new(),
        }
    }

    /// Add a record for an inclusive address range.
    pub fn push_range(
        &mut self,
        start: Ipv4Addr,
        end: Ipv4Addr,
        record: LocationRecord,
    ) -> &mut Self {
        self.builder.push(start, end, record);
        self
    }

    /// Add a record for a whole prefix.
    pub fn push_prefix(&mut self, prefix: Prefix, record: LocationRecord) -> &mut Self {
        self.builder.push_prefix(prefix, record);
        self
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.builder.len()
    }

    /// Whether nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.builder.is_empty()
    }

    /// Validate and build.
    pub fn build(self) -> Result<InMemoryDb, RangeOverlap> {
        Ok(InMemoryDb {
            name: self.name,
            map: self.builder.build()?,
        })
    }
}

impl InMemoryDb {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the database has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate `(start, end, record)` rows in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Addr, Ipv4Addr, &LocationRecord)> {
        self.map.iter()
    }
}

impl GeoDatabase for InMemoryDb {
    fn name(&self) -> &str {
        &self.name
    }

    fn lookup(&self, ip: Ipv4Addr) -> Option<LocationRecord> {
        self.map.lookup(ip).cloned()
    }

    fn lookup_compact(
        &self,
        ip: Ipv4Addr,
        interner: &mut LocationInterner,
    ) -> Option<CompactRecord> {
        // Native compact path: compact straight off the borrowed range
        // entry — the record is never cloned.
        self.map
            .lookup(ip)
            .map(|rec| CompactRecord::from_record(rec, interner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Granularity;

    fn rec(cc: &str) -> LocationRecord {
        LocationRecord::country_level(cc.parse().unwrap(), Granularity::Block24)
    }

    #[test]
    fn build_and_lookup() {
        let mut b = InMemoryDbBuilder::new("test-db");
        b.push_prefix("6.0.0.0/24".parse().unwrap(), rec("US"));
        b.push_prefix("31.0.0.0/24".parse().unwrap(), rec("DE"));
        let db = b.build().unwrap();
        assert_eq!(db.name(), "test-db");
        assert_eq!(db.len(), 2);
        let r = db.lookup("6.0.0.55".parse().unwrap()).unwrap();
        assert_eq!(r.country.unwrap().as_str(), "US");
        assert!(db.lookup("7.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn overlap_rejected() {
        let mut b = InMemoryDbBuilder::new("bad");
        b.push_prefix("6.0.0.0/24".parse().unwrap(), rec("US"));
        b.push_range(
            "6.0.0.128".parse().unwrap(),
            "6.0.1.10".parse().unwrap(),
            rec("CA"),
        );
        assert!(b.build().is_err());
    }
}

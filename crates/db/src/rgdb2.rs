//! RGDB v2 — the flat, zero-copy revision of the RGDB format.
//!
//! v1 keeps records as variable-length byte strings, so every lookup
//! funnels through a decode cache behind a mutex. v2 moves all the
//! variable-length data into an interned string table and makes every
//! other section fixed-width, so a fully validated image answers
//! lookups by pure pointer arithmetic over `&[u8]`: **no parse after
//! open, no decode cache, no locks**. Lookups borrow region/city bytes
//! straight from the image into a [`CompactRecord`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header (28 bytes):
//!   0   magic        b"RGDB"
//!   4   version      u16      (2)
//!   6   name_len     u16      database display name length
//!   8   node_count   u32      number of trie nodes
//!   12  record_count u32      number of deduplicated records
//!   16  strings_len  u32      byte length of the string table
//!   20  checksum     u64      FNV-1a64 over name + nodes + records + strings
//! name:    name_len bytes of UTF-8
//! nodes:   node_count × 12 bytes: left u32, right u32, record u32
//!          (0xFFFF_FFFF = none; `record` is an *index* into the record
//!          array, not a byte offset)
//! records: record_count × 20 bytes, fixed-width:
//!   0   flags       u8   (bit0 country, bit1 region, bit2 city, bit3 coord)
//!   1   granularity u8
//!   2   country     2 ASCII bytes        (zeroed when absent)
//!   4   region_off  u32 into strings     (0xFFFF_FFFF when absent)
//!   8   city_off    u32 into strings     (0xFFFF_FFFF when absent)
//!   12  lat         i32 micro-degrees    (zero when absent)
//!   16  lon         i32 micro-degrees    (zero when absent)
//! strings: deduplicated `len u8 + bytes` entries, strings_len total
//! ```
//!
//! The encoding is **canonical**: unknown flag bits, non-zeroed absent
//! fields, out-of-range offsets, bad UTF-8, or out-of-range coordinates
//! are all rejected at [`Rgdb2Reader::open`], which walks every node
//! and record once. After that single validation sweep the reader is
//! immutable shared state: `&Rgdb2Reader` is freely usable from any
//! number of threads with zero coordination.
//!
//! [`AnyReader`] dispatches on the header version so callers open v1
//! and v2 images through one entry point and hot-swap between them.

use crate::compact::{CompactRecord, FnvBuildHasher, LocationInterner};
use crate::record::{Granularity, LocationRecord};
use crate::rgdb::{
    flatten_trie, fnv1a, ix, micro_deg, put_str255, RgdbError, RgdbReader, Section, HEADER_LEN,
    MAGIC, NONE,
};
use crate::GeoDatabase;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use routergeo_geo::{Coordinate, CountryCode};
use routergeo_net::{Prefix, PrefixTrie};
use std::collections::HashMap;
use std::net::Ipv4Addr;

const VERSION2: u16 = 2;
/// Fixed byte width of one record in the record array.
const RECORD_WIDTH: usize = 20;
/// Byte width of one trie node (shared with v1).
const NODE_WIDTH: usize = 12;

// ---- writer -----------------------------------------------------------------

/// Intern `s` into the string table (len-prefixed, 255-byte cap shared
/// with v1), returning its byte offset. Deduplicates on the truncated
/// bytes so equal post-cap strings share one entry.
fn intern_string(strings: &mut BytesMut, seen: &mut HashMap<Vec<u8>, u32>, s: &str) -> u32 {
    let take = s.len().min(255);
    let key = s.as_bytes().get(..take).unwrap_or(s.as_bytes()).to_vec();
    if let Some(&off) = seen.get(&key) {
        return off;
    }
    let off = u32::try_from(strings.len()).expect("RGDB v2 string table exceeds u32 offset space");
    put_str255(strings, s.as_bytes());
    seen.insert(key, off);
    off
}

/// Encode one record into its fixed 20-byte form, interning strings.
fn encode_record2(
    rec: &LocationRecord,
    strings: &mut BytesMut,
    seen: &mut HashMap<Vec<u8>, u32>,
) -> [u8; RECORD_WIDTH] {
    let mut flags = 0u8;
    if rec.country.is_some() {
        flags |= 1;
    }
    if rec.region.is_some() {
        flags |= 2;
    }
    if rec.city.is_some() {
        flags |= 4;
    }
    if rec.coord.is_some() {
        flags |= 8;
    }
    let mut out = BytesMut::with_capacity(RECORD_WIDTH);
    out.put_u8(flags);
    out.put_u8(rec.granularity.id());
    match rec.country {
        Some(cc) => out.put_slice(&cc.bytes()),
        None => out.put_slice(&[0, 0]),
    }
    match &rec.region {
        Some(s) => out.put_u32_le(intern_string(strings, seen, s)),
        None => out.put_u32_le(NONE),
    }
    match &rec.city {
        Some(s) => out.put_u32_le(intern_string(strings, seen, s)),
        None => out.put_u32_le(NONE),
    }
    match rec.coord {
        Some(c) => {
            out.put_i32_le(micro_deg(c.lat()));
            out.put_i32_le(micro_deg(c.lon()));
        }
        None => {
            out.put_i32_le(0);
            out.put_i32_le(0);
        }
    }
    let bytes: [u8; RECORD_WIDTH] = out
        .as_ref()
        .try_into()
        .expect("v2 record encoding is exactly RECORD_WIDTH bytes");
    bytes
}

/// Serialize `(prefix, record)` entries into an RGDB **v2** image.
///
/// Records are deduplicated by their fixed-width encoding and strings
/// by content, so the same `(prefix, record)` input produces the same
/// answers as [`rgdb::write`] — the v1↔v2 differential suite holds the
/// two writers to exact `lookup_compact` agreement.
pub fn write<'a, I>(name: &str, entries: I) -> Bytes
where
    I: IntoIterator<Item = (Prefix, &'a LocationRecord)>,
{
    let mut strings = BytesMut::new();
    let mut seen_strings: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut records = BytesMut::new();
    let mut seen_records: HashMap<[u8; RECORD_WIDTH], u32> = HashMap::new();
    let mut trie: PrefixTrie<u32> = PrefixTrie::new();
    let mut record_count = 0u32;
    for (prefix, rec) in entries {
        let encoded = encode_record2(rec, &mut strings, &mut seen_strings);
        let index = *seen_records.entry(encoded).or_insert_with(|| {
            let idx = record_count;
            record_count = record_count
                .checked_add(1)
                .expect("RGDB v2 record count exceeds u32");
            records.put_slice(&encoded);
            idx
        });
        trie.insert(prefix, index);
    }
    let nodes = flatten_trie(&trie);

    let name_bytes = name.as_bytes();
    let mut payload = BytesMut::with_capacity(
        name_bytes.len() + nodes.len() * NODE_WIDTH + records.len() + strings.len(),
    );
    payload.put_slice(name_bytes);
    for n in &nodes {
        payload.put_u32_le(n[0]);
        payload.put_u32_le(n[1]);
        payload.put_u32_le(n[2]);
    }
    payload.put_slice(&records);
    payload.put_slice(&strings);
    let checksum = fnv1a(&payload);

    let mut out = BytesMut::with_capacity(HEADER_LEN + payload.len());
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION2);
    out.put_u16_le(u16::try_from(name_bytes.len()).expect("database name exceeds u16 length"));
    out.put_u32_le(u32::try_from(nodes.len()).expect("node count exceeds u32"));
    out.put_u32_le(record_count);
    out.put_u32_le(u32::try_from(strings.len()).expect("string table length exceeds u32"));
    out.put_u64_le(checksum);
    out.put_slice(&payload);
    out.freeze()
}

// ---- reader -----------------------------------------------------------------

/// One record's fields, with strings still as table offsets — the
/// borrow-free intermediate both lookup paths build from.
#[derive(Clone, Copy)]
struct RawRecord {
    granularity: Granularity,
    country: Option<CountryCode>,
    region_off: Option<u32>,
    city_off: Option<u32>,
    coord: Option<Coordinate>,
}

/// Zero-copy, lock-free reader over a validated RGDB v2 image.
///
/// [`Rgdb2Reader::open`] walks every node and record once; after that,
/// lookups are pure pointer arithmetic over the image bytes — no decode
/// cache, no mutex, no per-lookup allocation on the compact path.
/// Region/city strings are borrowed from the image and interned at the
/// call site, never copied into reader-owned state.
pub struct Rgdb2Reader {
    image: Bytes,
    name: String,
    nodes_start: usize,
    node_count: u32,
    records_start: usize,
    record_count: u32,
    strings_start: usize,
    strings_len: usize,
}

impl std::fmt::Debug for Rgdb2Reader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rgdb2Reader")
            .field("name", &self.name)
            .field("node_count", &self.node_count)
            .field("record_count", &self.record_count)
            .field("strings_len", &self.strings_len)
            .field("image_len", &self.image.len())
            .finish()
    }
}

impl Rgdb2Reader {
    /// Validate and open a v2 image. All structural validation happens
    /// here — node links, record indices, flag canonicality, string
    /// offsets/UTF-8, coordinate ranges — so lookups never parse.
    pub fn open(image: Bytes) -> Result<Rgdb2Reader, RgdbError> {
        let mut h = image.get(..HEADER_LEN).ok_or(RgdbError::Truncated)?;
        let mut magic = [0u8; 4];
        h.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(RgdbError::BadMagic);
        }
        let version = h.get_u16_le();
        if version != VERSION2 {
            return Err(RgdbError::BadVersion(version));
        }
        let name_len = usize::from(h.get_u16_le());
        let node_count = h.get_u32_le();
        let record_count = h.get_u32_le();
        let strings_len = ix(h.get_u32_le());
        let checksum = h.get_u64_le();

        let nodes_start = HEADER_LEN + name_len;
        let records_start = nodes_start + ix(node_count) * NODE_WIDTH;
        let strings_start = records_start + ix(record_count) * RECORD_WIDTH;
        let expected_total = strings_start + strings_len;
        if image.len() != expected_total {
            return Err(RgdbError::Truncated);
        }
        let payload = image.get(HEADER_LEN..).ok_or(RgdbError::Truncated)?;
        if fnv1a(payload) != checksum {
            return Err(RgdbError::ChecksumMismatch);
        }
        if node_count == 0 {
            // Byte 8 is the node_count field in the fixed header.
            return Err(RgdbError::corrupt(
                Section::Header,
                8,
                "nonzero node count (trie needs a root)",
            ));
        }
        let name_bytes = image
            .get(HEADER_LEN..nodes_start)
            .ok_or(RgdbError::Truncated)?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| RgdbError::corrupt(Section::Name, HEADER_LEN, "UTF-8 database name"))?
            .to_string();
        let reader = Rgdb2Reader {
            image,
            name,
            nodes_start,
            node_count,
            records_start,
            record_count,
            strings_start,
            strings_len,
        };
        reader.validate()?;
        Ok(reader)
    }

    /// The open-time validation sweep: every node link and every record
    /// field is checked once so the lookup path never can fail
    /// structurally on a reader that opened.
    fn validate(&self) -> Result<(), RgdbError> {
        for idx in 0..self.node_count {
            let (left, right, record) = self.node(idx)?;
            let at = self.nodes_start + ix(idx) * NODE_WIDTH;
            for link in [left, right] {
                if link != NONE && link >= self.node_count {
                    return Err(RgdbError::corrupt(
                        Section::Nodes,
                        at,
                        "node link within node_count",
                    ));
                }
            }
            if record != NONE && record >= self.record_count {
                return Err(RgdbError::corrupt(
                    Section::Nodes,
                    at,
                    "record index within record_count",
                ));
            }
        }
        for idx in 0..self.record_count {
            let raw = self.raw_record(idx)?;
            // Resolve both string offsets so lookup-time borrows are
            // known in-bounds, valid UTF-8.
            for off in [raw.region_off, raw.city_off].into_iter().flatten() {
                self.str_at(off)?;
            }
        }
        Ok(())
    }

    /// Database display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of deduplicated records in the record array.
    pub fn record_count(&self) -> u32 {
        self.record_count
    }

    /// Total image size in bytes.
    pub fn image_len(&self) -> usize {
        self.image.len()
    }

    #[inline]
    fn node(&self, idx: u32) -> Result<(u32, u32, u32), RgdbError> {
        let at = self.nodes_start + ix(idx) * NODE_WIDTH;
        if idx >= self.node_count {
            return Err(RgdbError::corrupt(
                Section::Nodes,
                at,
                "node link within node_count",
            ));
        }
        let mut b = self
            .image
            .get(at..at + NODE_WIDTH)
            .ok_or_else(|| RgdbError::corrupt(Section::Nodes, at, "12-byte node in bounds"))?;
        Ok((b.get_u32_le(), b.get_u32_le(), b.get_u32_le()))
    }

    /// Read and canonically validate the fixed-width record at `idx`.
    #[inline]
    fn raw_record(&self, idx: u32) -> Result<RawRecord, RgdbError> {
        let at = self.records_start + ix(idx) * RECORD_WIDTH;
        if idx >= self.record_count {
            return Err(RgdbError::corrupt(
                Section::Records,
                at,
                "record index within record_count",
            ));
        }
        let mut b = self
            .image
            .get(at..at + RECORD_WIDTH)
            .ok_or_else(|| RgdbError::corrupt(Section::Records, at, "20-byte record in bounds"))?;
        let flags = b.get_u8();
        if flags & 0xF0 != 0 {
            return Err(RgdbError::corrupt(
                Section::Records,
                at,
                "known record flag bits",
            ));
        }
        let gran = Granularity::from_id(b.get_u8())
            .ok_or_else(|| RgdbError::corrupt(Section::Records, at + 1, "known granularity id"))?;
        let ca = b.get_u8();
        let cb = b.get_u8();
        let country = if flags & 1 != 0 {
            Some(CountryCode::new(ca, cb).ok_or_else(|| {
                RgdbError::corrupt(Section::Records, at + 2, "ASCII country code")
            })?)
        } else {
            if (ca, cb) != (0, 0) {
                return Err(RgdbError::corrupt(
                    Section::Records,
                    at + 2,
                    "zeroed absent country field",
                ));
            }
            None
        };
        let region_off = b.get_u32_le();
        let region_off = if flags & 2 != 0 {
            if region_off == NONE {
                return Err(RgdbError::corrupt(
                    Section::Records,
                    at + 4,
                    "present region offset",
                ));
            }
            Some(region_off)
        } else {
            if region_off != NONE {
                return Err(RgdbError::corrupt(
                    Section::Records,
                    at + 4,
                    "NONE absent region offset",
                ));
            }
            None
        };
        let city_off = b.get_u32_le();
        let city_off = if flags & 4 != 0 {
            if city_off == NONE {
                return Err(RgdbError::corrupt(
                    Section::Records,
                    at + 8,
                    "present city offset",
                ));
            }
            Some(city_off)
        } else {
            if city_off != NONE {
                return Err(RgdbError::corrupt(
                    Section::Records,
                    at + 8,
                    "NONE absent city offset",
                ));
            }
            None
        };
        let lat = b.get_i32_le();
        let lon = b.get_i32_le();
        let coord = if flags & 8 != 0 {
            Some(
                Coordinate::new(f64::from(lat) / 1e6, f64::from(lon) / 1e6).map_err(|_| {
                    RgdbError::corrupt(Section::Records, at + 12, "coordinate within ±90/±180")
                })?,
            )
        } else {
            if (lat, lon) != (0, 0) {
                return Err(RgdbError::corrupt(
                    Section::Records,
                    at + 12,
                    "zeroed absent coordinate field",
                ));
            }
            None
        };
        Ok(RawRecord {
            granularity: gran,
            country,
            region_off,
            city_off,
            coord,
        })
    }

    /// Borrow the string at table offset `off` straight from the image.
    #[inline]
    fn str_at(&self, off: u32) -> Result<&str, RgdbError> {
        let at = ix(off);
        let abs = self.strings_start + at;
        if at >= self.strings_len {
            return Err(RgdbError::corrupt(
                Section::Strings,
                abs,
                "string offset within string table",
            ));
        }
        let len = usize::from(*self.image.get(abs).ok_or_else(|| {
            RgdbError::corrupt(Section::Strings, abs, "string length byte in bounds")
        })?);
        if at + 1 + len > self.strings_len {
            return Err(RgdbError::corrupt(
                Section::Strings,
                abs + 1,
                "string bytes within string table",
            ));
        }
        let bytes = self.image.get(abs + 1..abs + 1 + len).ok_or_else(|| {
            RgdbError::corrupt(Section::Strings, abs + 1, "string bytes in bounds")
        })?;
        std::str::from_utf8(bytes)
            .map_err(|_| RgdbError::corrupt(Section::Strings, abs + 1, "UTF-8 string bytes"))
    }

    /// Walk the trie MSB-first and return the deepest record index on
    /// the path together with its depth — the longest-prefix match.
    fn deepest_match(&self, ip: Ipv4Addr) -> Result<Option<(u32, u8)>, RgdbError> {
        let addr = u32::from(ip);
        let mut node = 0u32;
        let mut best: Option<(u32, u8)> = None;
        for depth in 0..=32u32 {
            let (left, right, record) = self.node(node)?;
            if record != NONE {
                best = Some((record, u8::try_from(depth).expect("trie depth <= 32")));
            }
            if depth == 32 {
                break;
            }
            let bit = (addr >> (31 - depth)) & 1;
            let next = if bit == 0 { left } else { right };
            if next == NONE {
                break;
            }
            node = next;
        }
        Ok(best)
    }

    /// Prefix length of the longest match for `ip`. `None` when no
    /// prefix on the walk carries a record — same contract as
    /// [`RgdbReader::match_len`].
    pub fn match_len(&self, ip: Ipv4Addr) -> Result<Option<u8>, RgdbError> {
        Ok(self.deepest_match(ip)?.map(|(_, len)| len))
    }

    /// Build the compact answer for record `idx`, borrowing strings
    /// from the image into the interner.
    fn record_compact(
        &self,
        idx: u32,
        interner: &mut LocationInterner,
    ) -> Result<CompactRecord, RgdbError> {
        let raw = self.raw_record(idx)?;
        let region_id = match raw.region_off {
            Some(off) => Some(interner.intern(self.str_at(off)?)),
            None => None,
        };
        let city_id = match raw.city_off {
            Some(off) => Some(interner.intern(self.str_at(off)?)),
            None => None,
        };
        Ok(CompactRecord {
            country: raw.country,
            region_id,
            city_id,
            coord: raw.coord,
            granularity: raw.granularity,
        })
    }

    /// Build the owning answer for record `idx`.
    fn record_owned(&self, idx: u32) -> Result<LocationRecord, RgdbError> {
        let raw = self.raw_record(idx)?;
        let region = match raw.region_off {
            Some(off) => Some(self.str_at(off)?.to_string()),
            None => None,
        };
        let city = match raw.city_off {
            Some(off) => Some(self.str_at(off)?.to_string()),
            None => None,
        };
        Ok(LocationRecord {
            country: raw.country,
            region,
            city,
            coord: raw.coord,
            granularity: raw.granularity,
        })
    }

    /// Longest-prefix-match lookup returning a structural error on
    /// latent corruption (unreachable on an image that opened — the
    /// validation sweep covered every node and record).
    pub fn try_lookup(&self, ip: Ipv4Addr) -> Result<Option<LocationRecord>, RgdbError> {
        match self.deepest_match(ip)? {
            None => Ok(None),
            Some((idx, _)) => self.record_owned(idx).map(Some),
        }
    }

    /// Batched compact lookup: resolve the trie walks in sorted address
    /// order (adjacent addresses share upper trie levels, so the node
    /// array is read near-sequentially), then intern answers in the
    /// *original* order with one compact conversion per distinct
    /// record. Identical output to the per-address loop.
    fn batch_compact(
        &self,
        ips: &[Ipv4Addr],
        interner: &mut LocationInterner,
    ) -> Vec<Option<CompactRecord>> {
        let mut order: Vec<(u32, usize)> = ips
            .iter()
            .enumerate()
            .map(|(pos, ip)| (u32::from(*ip), pos))
            .collect();
        order.sort_unstable();
        // Pass 1 (sorted): trie walks only — no interner traffic.
        let mut located: Vec<Option<u32>> = vec![None; ips.len()];
        let mut last: Option<(u32, Option<u32>)> = None;
        for (addr, pos) in order {
            let idx = match last {
                // Duplicate addresses collapse to one walk.
                Some((prev, hit)) if prev == addr => hit,
                _ => {
                    let hit = self
                        .deepest_match(Ipv4Addr::from(addr))
                        .ok()
                        .flatten()
                        .map(|(idx, _)| idx);
                    last = Some((addr, hit));
                    hit
                }
            };
            if let Some(slot) = located.get_mut(pos) {
                *slot = idx;
            }
        }
        // Pass 2 (original order): compact each distinct record once so
        // interner id assignment matches the sequential loop. FNV keeps
        // the per-address memo probe to a few instructions.
        let mut memo: HashMap<u32, CompactRecord, FnvBuildHasher> = HashMap::default();
        located
            .into_iter()
            .map(|slot| {
                let idx = slot?;
                if let Some(hit) = memo.get(&idx) {
                    return Some(*hit);
                }
                let compact = self.record_compact(idx, interner).ok()?;
                memo.insert(idx, compact);
                Some(compact)
            })
            .collect()
    }
}

impl GeoDatabase for Rgdb2Reader {
    fn name(&self) -> &str {
        &self.name
    }

    fn lookup(&self, ip: Ipv4Addr) -> Option<LocationRecord> {
        // Images validated at open; treat latent corruption as a miss.
        self.try_lookup(ip).ok().flatten()
    }

    fn lookup_compact(
        &self,
        ip: Ipv4Addr,
        interner: &mut LocationInterner,
    ) -> Option<CompactRecord> {
        let (idx, _) = self.deepest_match(ip).ok().flatten()?;
        self.record_compact(idx, interner).ok()
    }

    fn lookup_batch(
        &self,
        ips: &[Ipv4Addr],
        interner: &mut LocationInterner,
    ) -> Vec<Option<CompactRecord>> {
        self.batch_compact(ips, interner)
    }
}

// ---- version dispatch -------------------------------------------------------

/// A reader over either RGDB format, dispatched on the header version
/// at open. This is the type serving and tooling paths hold so v1 and
/// v2 images are interchangeable — hot-swapping a daemon from a v1 to a
/// v2 image is one [`AnyReader::open`] away.
pub enum AnyReader {
    /// A v1 image behind the decode-once cache reader.
    V1(RgdbReader),
    /// A v2 image behind the zero-copy flat reader.
    V2(Rgdb2Reader),
}

impl AnyReader {
    /// Open an image of either version: magic is checked first, then
    /// the version field picks the reader, which performs its own full
    /// validation.
    pub fn open(image: Bytes) -> Result<AnyReader, RgdbError> {
        let header = image.get(..6).ok_or(RgdbError::Truncated)?;
        if header.get(..4) != Some(MAGIC.as_slice()) {
            return Err(RgdbError::BadMagic);
        }
        let mut v = header.get(4..6).ok_or(RgdbError::Truncated)?;
        match v.get_u16_le() {
            1 => RgdbReader::open(image).map(AnyReader::V1),
            2 => Rgdb2Reader::open(image).map(AnyReader::V2),
            other => Err(RgdbError::BadVersion(other)),
        }
    }

    /// Format version of the opened image (1 or 2).
    pub fn version(&self) -> u16 {
        match self {
            AnyReader::V1(_) => 1,
            AnyReader::V2(_) => VERSION2,
        }
    }

    /// Database display name.
    pub fn name(&self) -> &str {
        match self {
            AnyReader::V1(r) => GeoDatabase::name(r),
            AnyReader::V2(r) => r.name(),
        }
    }

    /// Number of deduplicated records.
    pub fn record_count(&self) -> u32 {
        match self {
            AnyReader::V1(r) => r.record_count(),
            AnyReader::V2(r) => r.record_count(),
        }
    }

    /// Total image size in bytes.
    pub fn image_len(&self) -> usize {
        match self {
            AnyReader::V1(r) => r.image_len(),
            AnyReader::V2(r) => r.image_len(),
        }
    }

    /// Prefix length of the longest match for `ip`.
    pub fn match_len(&self, ip: Ipv4Addr) -> Result<Option<u8>, RgdbError> {
        match self {
            AnyReader::V1(r) => r.match_len(ip),
            AnyReader::V2(r) => r.match_len(ip),
        }
    }

    /// Longest-prefix-match lookup returning a parse error on
    /// corruption.
    pub fn try_lookup(&self, ip: Ipv4Addr) -> Result<Option<LocationRecord>, RgdbError> {
        match self {
            AnyReader::V1(r) => r.try_lookup(ip),
            AnyReader::V2(r) => r.try_lookup(ip),
        }
    }
}

impl GeoDatabase for AnyReader {
    fn name(&self) -> &str {
        AnyReader::name(self)
    }

    fn lookup(&self, ip: Ipv4Addr) -> Option<LocationRecord> {
        match self {
            AnyReader::V1(r) => r.lookup(ip),
            AnyReader::V2(r) => r.lookup(ip),
        }
    }

    fn lookup_compact(
        &self,
        ip: Ipv4Addr,
        interner: &mut LocationInterner,
    ) -> Option<CompactRecord> {
        match self {
            AnyReader::V1(r) => r.lookup_compact(ip, interner),
            AnyReader::V2(r) => r.lookup_compact(ip, interner),
        }
    }

    fn lookup_batch(
        &self,
        ips: &[Ipv4Addr],
        interner: &mut LocationInterner,
    ) -> Vec<Option<CompactRecord>> {
        match self {
            AnyReader::V1(r) => r.lookup_batch(ips, interner),
            AnyReader::V2(r) => r.lookup_batch(ips, interner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rgdb;

    fn sample_records() -> Vec<(Prefix, LocationRecord)> {
        let city = LocationRecord {
            country: Some("US".parse().unwrap()),
            region: Some("USA Region 1".into()),
            city: Some("Springfield".into()),
            coord: Some(Coordinate::new(39.8, -89.6).unwrap()),
            granularity: Granularity::SubBlock,
        };
        let country = LocationRecord::country_level("DE".parse().unwrap(), Granularity::Aggregate);
        let centroid = LocationRecord {
            country: Some("FR".parse().unwrap()),
            region: None,
            city: None,
            coord: Some(Coordinate::new(46.2, 2.2).unwrap()),
            granularity: Granularity::Block24,
        };
        let empty_city = LocationRecord {
            country: Some("JP".parse().unwrap()),
            region: Some(String::new()),
            city: Some(String::new()),
            coord: None,
            granularity: Granularity::Block24,
        };
        vec![
            ("6.0.0.0/24".parse().unwrap(), city),
            ("31.0.0.0/16".parse().unwrap(), country),
            ("31.0.1.0/24".parse().unwrap(), centroid),
            ("77.1.0.0/24".parse().unwrap(), empty_city),
        ]
    }

    fn build() -> Rgdb2Reader {
        let recs = sample_records();
        let image = write("Test-DB", recs.iter().map(|(p, r)| (*p, r)));
        Rgdb2Reader::open(image).unwrap()
    }

    #[test]
    fn roundtrip_lookups() {
        let db = build();
        assert_eq!(db.name(), "Test-DB");
        let r = db.lookup("6.0.0.200".parse().unwrap()).unwrap();
        assert_eq!(r.city.as_deref(), Some("Springfield"));
        assert_eq!(r.granularity, Granularity::SubBlock);
        let c = r.coord.unwrap();
        assert!((c.lat() - 39.8).abs() < 1e-5);
        // Longest-prefix: /24 centroid inside the /16 country record.
        let r = db.lookup("31.0.1.7".parse().unwrap()).unwrap();
        assert!(r.coord.is_some() && r.city.is_none());
        let r = db.lookup("31.0.99.1".parse().unwrap()).unwrap();
        assert_eq!(r.country.unwrap().as_str(), "DE");
        assert!(db.lookup("99.0.0.1".parse().unwrap()).is_none());
        // v2 represents Some("") distinct from None.
        let r = db.lookup("77.1.0.9".parse().unwrap()).unwrap();
        assert_eq!(r.region.as_deref(), Some(""));
        assert_eq!(r.city.as_deref(), Some(""));
    }

    #[test]
    fn answers_and_match_len_agree_with_v1() {
        let recs = sample_records();
        let v1 = RgdbReader::open(rgdb::write("pair", recs.iter().map(|(p, r)| (*p, r)))).unwrap();
        let v2 = build();
        let mut i1 = LocationInterner::new();
        let mut i2 = LocationInterner::new();
        for ip in [
            "6.0.0.0",
            "6.0.0.255",
            "31.0.0.0",
            "31.0.1.255",
            "31.0.99.1",
            "77.1.0.1",
            "99.0.0.1",
            "0.0.0.0",
            "255.255.255.255",
        ] {
            let ip: Ipv4Addr = ip.parse().unwrap();
            assert_eq!(v1.try_lookup(ip).unwrap(), v2.try_lookup(ip).unwrap());
            assert_eq!(v1.match_len(ip).unwrap(), v2.match_len(ip).unwrap());
            assert_eq!(
                v1.lookup_compact(ip, &mut i1),
                v2.lookup_compact(ip, &mut i2)
            );
        }
        assert_eq!(i1, i2);
    }

    #[test]
    fn batched_lookups_match_sequential() {
        let db = build();
        let ips: Vec<Ipv4Addr> = [
            "31.0.1.7",
            "6.0.0.200",
            "99.0.0.1",
            "6.0.0.200",
            "77.1.0.3",
            "31.0.99.1",
            "6.0.0.1",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        let mut seq_interner = LocationInterner::new();
        let seq: Vec<_> = ips
            .iter()
            .map(|ip| db.lookup_compact(*ip, &mut seq_interner))
            .collect();
        let mut batch_interner = LocationInterner::new();
        let batch = db.lookup_batch(&ips, &mut batch_interner);
        assert_eq!(seq, batch);
        assert_eq!(seq_interner, batch_interner);
        assert!(db.lookup_batch(&[], &mut batch_interner).is_empty());
    }

    #[test]
    fn records_and_strings_are_deduplicated() {
        let rec = LocationRecord {
            country: Some("US".parse().unwrap()),
            region: Some("Illinois".into()),
            city: Some("Illinois".into()),
            coord: None,
            granularity: Granularity::Block24,
        };
        let entries: Vec<(Prefix, LocationRecord)> = (0..100)
            .map(|i| {
                let p: Prefix = format!("6.0.{i}.0/24").parse().unwrap();
                (p, rec.clone())
            })
            .collect();
        let image = write("dedup", entries.iter().map(|(p, r)| (*p, r)));
        let db = Rgdb2Reader::open(image).unwrap();
        assert_eq!(db.record_count(), 1);
        // One record, one interned string ("Illinois" shared by region
        // and city): 20 record bytes + 1 len byte + 8 string bytes.
        assert_eq!(db.strings_len, 9);
    }

    #[test]
    fn detects_truncation_and_header_corruption() {
        let recs = sample_records();
        let image = write("t", recs.iter().map(|(p, r)| (*p, r)));
        for cut in [0, 3, HEADER_LEN - 1, image.len() - 1] {
            assert!(
                Rgdb2Reader::open(image.slice(..cut)).is_err(),
                "cut at {cut} not detected"
            );
        }
        let mut bytes = image.to_vec();
        let n = bytes.len();
        bytes[n - 3] ^= 0xFF;
        assert!(matches!(
            Rgdb2Reader::open(Bytes::from(bytes)),
            Err(RgdbError::ChecksumMismatch)
        ));
        let mut bytes = image.to_vec();
        bytes[4] = 0x07;
        assert!(matches!(
            Rgdb2Reader::open(Bytes::from(bytes)),
            Err(RgdbError::BadVersion(7))
        ));
    }

    /// Corrupt one payload byte and re-fix the checksum so the
    /// structural validation sweep is what fires.
    fn corrupt_at(image: &Bytes, at: usize, value: u8) -> Result<Rgdb2Reader, RgdbError> {
        let mut bytes = image.to_vec();
        bytes[at] = value;
        let sum = fnv1a(&bytes[HEADER_LEN..]).to_le_bytes();
        bytes[20..28].copy_from_slice(&sum);
        Rgdb2Reader::open(Bytes::from(bytes))
    }

    #[test]
    fn open_rejects_noncanonical_records_with_context() {
        let recs = sample_records();
        let image = write("x", recs.iter().map(|(p, r)| (*p, r)));
        let db = Rgdb2Reader::open(image.clone()).unwrap();
        let rec0 = db.records_start;
        // Unknown flag bit.
        let err = corrupt_at(&image, rec0, 0xFF).unwrap_err();
        assert_eq!(err.context().unwrap().section, Section::Records);
        // Unknown granularity.
        let err = corrupt_at(&image, rec0 + 1, 9).unwrap_err();
        assert_eq!(err.context().unwrap().expected, "known granularity id");
        // Record 0 in the sample set has all four flags set; point its
        // region offset past the string table.
        let err = corrupt_at(&image, rec0 + 4, 0xEE).unwrap_err();
        assert_eq!(err.context().unwrap().section, Section::Strings);
        // Bad node link: root's record index field.
        let node0 = db.nodes_start;
        let err = corrupt_at(&image, node0 + 8, 0x77).unwrap_err();
        assert_eq!(err.context().unwrap().section, Section::Nodes);
    }

    #[test]
    fn empty_database_and_default_route() {
        let image = write("empty", std::iter::empty());
        let db = Rgdb2Reader::open(image).unwrap();
        assert!(db.lookup("1.2.3.4".parse().unwrap()).is_none());
        assert_eq!(db.record_count(), 0);

        let rec = LocationRecord::country_level("US".parse().unwrap(), Granularity::Aggregate);
        let entries = [(Prefix::default_route(), rec)];
        let image = write("all", entries.iter().map(|(p, r)| (*p, r)));
        let db = Rgdb2Reader::open(image).unwrap();
        assert!(db.lookup("255.255.255.255".parse().unwrap()).is_some());
        assert!(db.lookup("0.0.0.0".parse().unwrap()).is_some());
    }

    #[test]
    fn any_reader_dispatches_on_version() {
        let recs = sample_records();
        let v1_image = rgdb::write("Any-DB", recs.iter().map(|(p, r)| (*p, r)));
        let v2_image = write("Any-DB", recs.iter().map(|(p, r)| (*p, r)));
        let v1 = AnyReader::open(v1_image).unwrap();
        let v2 = AnyReader::open(v2_image).unwrap();
        assert_eq!(v1.version(), 1);
        assert_eq!(v2.version(), 2);
        assert_eq!(v1.name(), "Any-DB");
        assert_eq!(v2.name(), "Any-DB");
        let ip: Ipv4Addr = "6.0.0.200".parse().unwrap();
        assert_eq!(v1.try_lookup(ip).unwrap(), v2.try_lookup(ip).unwrap());
        assert_eq!(v1.match_len(ip).unwrap(), v2.match_len(ip).unwrap());
        assert!(matches!(
            AnyReader::open(Bytes::from(b"XGDB\x01\x00rest".to_vec())),
            Err(RgdbError::BadMagic)
        ));
        assert!(matches!(
            AnyReader::open(Bytes::from(b"RGDB\x09\x00rest".to_vec())),
            Err(RgdbError::BadVersion(9))
        ));
    }
}

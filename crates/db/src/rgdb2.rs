//! RGDB v2 — the flat, zero-copy revision of the RGDB format.
//!
//! v1 keeps records as variable-length byte strings, so every lookup
//! funnels through a decode cache behind a mutex. v2 moves all the
//! variable-length data into an interned string table and makes every
//! other section fixed-width, so a fully validated image answers
//! lookups by pure pointer arithmetic over `&[u8]`: **no parse after
//! open, no decode cache, no locks**. Lookups borrow region/city bytes
//! straight from the image into a [`CompactRecord`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header (28 bytes):
//!   0   magic        b"RGDB"
//!   4   version      u16      (2)
//!   6   name_len     u16      database display name length
//!   8   node_count   u32      number of trie nodes
//!   12  record_count u32      number of deduplicated records
//!   16  strings_len  u32      byte length of the string table
//!   20  checksum     u64      FNV-1a64 over name + nodes + records + strings
//! name:    name_len bytes of UTF-8
//! nodes:   node_count × 12 bytes: left u32, right u32, record u32
//!          (0xFFFF_FFFF = none; `record` is an *index* into the record
//!          array, not a byte offset)
//! records: record_count × 20 bytes, fixed-width:
//!   0   flags       u8   (bit0 country, bit1 region, bit2 city, bit3 coord)
//!   1   granularity u8
//!   2   country     2 ASCII bytes        (zeroed when absent)
//!   4   region_off  u32 into strings     (0xFFFF_FFFF when absent)
//!   8   city_off    u32 into strings     (0xFFFF_FFFF when absent)
//!   12  lat         i32 micro-degrees    (zero when absent)
//!   16  lon         i32 micro-degrees    (zero when absent)
//! strings: deduplicated `len u8 + bytes` entries, strings_len total
//! ```
//!
//! ## v2.1 — the cache-locality revision
//!
//! v2.1 (header version 3, [`write_v21`]) keeps the node/record/string
//! encodings bit-for-bit and adds two layout guarantees aimed at memory
//! latency on the lookup path:
//!
//! - **Stride-16 root table.** A fixed 65 536 × 8-byte section between
//!   the name and the nodes, indexed by an address's top sixteen bits.
//!   Each entry is `record u32 | node u32`: the deepest record on the
//!   trie walk through depth 16, and the depth-16 subtrie root when the
//!   walk reaches one (`0xFFFF_FFFF` = none on either side). The common
//!   case replaces up to 16 dependent node hops with one indexed load.
//! - **Level-order node placement.** The remaining trie nodes are laid
//!   out breadth-first: node 0 is the root and, scanning nodes in index
//!   order, the non-`NONE` child links are exactly 1, 2, 3, … so each
//!   trie level is one contiguous index range. The batched lookup walks
//!   a sorted frontier level by level, touching the node array in
//!   near-sequential order instead of chasing one pointer per address.
//!
//! Both additions are **pure acceleration**: the full trie is retained,
//! so every v2 walk (including [`Rgdb2Reader::match_len`]) still works,
//! and answers are identical between the two layouts.
//!
//! The encoding is **canonical**: unknown flag bits, non-zeroed absent
//! fields, out-of-range offsets, bad UTF-8, or out-of-range coordinates
//! are all rejected at [`Rgdb2Reader::open`], which walks every node
//! and record once. On v2.1 images the same sweep checks the level-order
//! placement invariant and re-derives the entire root table from the
//! nodes, rejecting any entry that disagrees — a root table can never
//! change an answer, only speed it up. After that single validation
//! sweep the reader is immutable shared state: `&Rgdb2Reader` is freely
//! usable from any number of threads with zero coordination.
//!
//! [`AnyReader`] dispatches on the header version so callers open v1,
//! v2, and v2.1 images through one entry point and hot-swap between
//! them.

use crate::compact::{CompactRecord, LocationInterner};
use crate::record::{Granularity, LocationRecord};
use crate::rgdb::{
    flatten_trie, fnv1a, ix, micro_deg, put_str255, RgdbError, RgdbReader, Section, HEADER_LEN,
    MAGIC, NONE,
};
use crate::GeoDatabase;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use routergeo_geo::{Coordinate, CountryCode};
use routergeo_net::{Prefix, PrefixTrie};
use std::collections::HashMap;
use std::net::Ipv4Addr;

const VERSION2: u16 = 2;
/// On-disk header version of the v2.1 layout revision.
const VERSION21: u16 = 3;
/// Fixed byte width of one record in the record array.
const RECORD_WIDTH: usize = 20;
/// Byte width of one trie node (shared with v1).
const NODE_WIDTH: usize = 12;
/// Byte width of one stride-16 root-table entry: `record u32 | node u32`.
const ROOT_ENTRY_WIDTH: usize = 8;
/// Total byte length of the v2.1 root table: one entry per /16.
pub(crate) const ROOT_TABLE_BYTES: usize = (1 << 16) * ROOT_ENTRY_WIDTH;

// ---- writer -----------------------------------------------------------------

/// Intern `s` into the string table (len-prefixed, 255-byte cap shared
/// with v1), returning its byte offset. Deduplicates on the truncated
/// bytes so equal post-cap strings share one entry.
fn intern_string(strings: &mut BytesMut, seen: &mut HashMap<Vec<u8>, u32>, s: &str) -> u32 {
    let take = s.len().min(255);
    let key = s.as_bytes().get(..take).unwrap_or(s.as_bytes()).to_vec();
    if let Some(&off) = seen.get(&key) {
        return off;
    }
    let off = u32::try_from(strings.len()).expect("RGDB v2 string table exceeds u32 offset space");
    put_str255(strings, s.as_bytes());
    seen.insert(key, off);
    off
}

/// Encode one record into its fixed 20-byte form, interning strings.
fn encode_record2(
    rec: &LocationRecord,
    strings: &mut BytesMut,
    seen: &mut HashMap<Vec<u8>, u32>,
) -> [u8; RECORD_WIDTH] {
    let mut flags = 0u8;
    if rec.country.is_some() {
        flags |= 1;
    }
    if rec.region.is_some() {
        flags |= 2;
    }
    if rec.city.is_some() {
        flags |= 4;
    }
    if rec.coord.is_some() {
        flags |= 8;
    }
    let mut out = BytesMut::with_capacity(RECORD_WIDTH);
    out.put_u8(flags);
    out.put_u8(rec.granularity.id());
    match rec.country {
        Some(cc) => out.put_slice(&cc.bytes()),
        None => out.put_slice(&[0, 0]),
    }
    match &rec.region {
        Some(s) => out.put_u32_le(intern_string(strings, seen, s)),
        None => out.put_u32_le(NONE),
    }
    match &rec.city {
        Some(s) => out.put_u32_le(intern_string(strings, seen, s)),
        None => out.put_u32_le(NONE),
    }
    match rec.coord {
        Some(c) => {
            out.put_i32_le(micro_deg(c.lat()));
            out.put_i32_le(micro_deg(c.lon()));
        }
        None => {
            out.put_i32_le(0);
            out.put_i32_le(0);
        }
    }
    let bytes: [u8; RECORD_WIDTH] = out
        .as_ref()
        .try_into()
        .expect("v2 record encoding is exactly RECORD_WIDTH bytes");
    bytes
}

/// Deduplicated record/string tables plus the record-index trie — the
/// shared front half of the v2 and v2.1 writers.
struct WriterTables {
    strings: BytesMut,
    records: BytesMut,
    record_count: u32,
    trie: PrefixTrie<u32>,
}

fn build_tables<'a, I>(entries: I) -> WriterTables
where
    I: IntoIterator<Item = (Prefix, &'a LocationRecord)>,
{
    let mut strings = BytesMut::new();
    let mut seen_strings: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut records = BytesMut::new();
    let mut seen_records: HashMap<[u8; RECORD_WIDTH], u32> = HashMap::new();
    let mut trie: PrefixTrie<u32> = PrefixTrie::new();
    let mut record_count = 0u32;
    for (prefix, rec) in entries {
        let encoded = encode_record2(rec, &mut strings, &mut seen_strings);
        let index = *seen_records.entry(encoded).or_insert_with(|| {
            let idx = record_count;
            record_count = record_count
                .checked_add(1)
                .expect("RGDB v2 record count exceeds u32");
            records.put_slice(&encoded);
            idx
        });
        trie.insert(prefix, index);
    }
    WriterTables {
        strings,
        records,
        record_count,
        trie,
    }
}

/// Renumber the flattened trie into level order (BFS from the root):
/// node 0 stays the root, its children come next, then the
/// grandchildren, and so on. Scanning nodes in index order, the
/// non-`NONE` child links are then exactly 1, 2, 3, … — the placement
/// invariant the v2.1 validator pins, and what lets the frontier batch
/// walk read each trie level as one forward index range.
fn bfs_nodes(trie: &PrefixTrie<u32>) -> Vec<[u32; 3]> {
    let arena = flatten_trie(trie);
    // Visit order doubles as the new→old index table.
    let mut order: Vec<usize> = Vec::with_capacity(arena.len());
    let mut new_of: Vec<u32> = vec![NONE; arena.len()];
    order.push(0);
    if let Some(slot) = new_of.get_mut(0) {
        *slot = 0;
    }
    let mut head = 0usize;
    while head < order.len() {
        let old = *order.get(head).expect("head < order.len()");
        head += 1;
        let node = *arena.get(old).expect("flattened links stay in bounds");
        for link in [node[0], node[1]] {
            if link != NONE {
                let renumbered = u32::try_from(order.len()).expect("node count exceeds u32");
                if let Some(slot) = new_of.get_mut(ix(link)) {
                    *slot = renumbered;
                }
                order.push(ix(link));
            }
        }
    }
    debug_assert_eq!(order.len(), arena.len(), "trie arena fully reachable");
    order
        .iter()
        .map(|&old| {
            let n = *arena.get(old).expect("visited nodes are in bounds");
            let remap = |link: u32| {
                if link == NONE {
                    NONE
                } else {
                    *new_of
                        .get(ix(link))
                        .expect("flattened links stay in bounds")
                }
            };
            [remap(n[0]), remap(n[1]), n[2]]
        })
        .collect()
}

/// Copy `count` consecutive `(record, node)` root entries starting at
/// `/16` index `base`.
fn fill_entries(table: &mut [u8], base: u32, count: u32, record: u32, node: u32) {
    let rec = record.to_le_bytes();
    let nod = node.to_le_bytes();
    for hi in base..base.saturating_add(count) {
        let at = ix(hi) * ROOT_ENTRY_WIDTH;
        if let Some(slot) = table.get_mut(at..at + 4) {
            slot.copy_from_slice(&rec);
        }
        if let Some(slot) = table.get_mut(at + 4..at + ROOT_ENTRY_WIDTH) {
            slot.copy_from_slice(&nod);
        }
    }
}

/// Materialize the full canonical stride-16 root table from a node
/// source: depth-first over the top sixteen trie levels, filling every
/// `/16` span the trie does not reach with the deepest record seen on
/// its path (and `NONE` for the subtrie). Shared by the writer and the
/// open-time validator so "canonical root table" has exactly one
/// definition in the codebase.
fn build_root_table<F>(node_at: &mut F) -> Result<Vec<u8>, RgdbError>
where
    F: FnMut(u32) -> Result<(u32, u32, u32), RgdbError>,
{
    let mut table = vec![0u8; ROOT_TABLE_BYTES];
    // (node, depth, first /16 index under this node, best record so far)
    let mut stack: Vec<(u32, u32, u32, u32)> = vec![(0, 0, 0, NONE)];
    while let Some((node, depth, base, mut best)) = stack.pop() {
        let (left, right, record) = node_at(node)?;
        if record != NONE {
            best = record;
        }
        if depth == 16 {
            fill_entries(&mut table, base, 1, best, node);
            continue;
        }
        let half = 1u32 << (16 - depth - 1);
        for (bit, child) in [(0u32, left), (1u32, right)] {
            let child_base = base + bit * half;
            if child == NONE {
                fill_entries(&mut table, child_base, half, best, NONE);
            } else {
                stack.push((child, depth + 1, child_base, best));
            }
        }
    }
    Ok(table)
}

/// Assemble the final image: header, name, optional root table, nodes,
/// records, strings, with the checksum covering everything after the
/// header.
fn assemble(
    version: u16,
    name: &str,
    root: Option<&[u8]>,
    nodes: &[[u32; 3]],
    records: &[u8],
    strings: &[u8],
    record_count: u32,
) -> Bytes {
    let name_bytes = name.as_bytes();
    let root_len = root.map_or(0, <[u8]>::len);
    let mut payload = BytesMut::with_capacity(
        name_bytes.len() + root_len + nodes.len() * NODE_WIDTH + records.len() + strings.len(),
    );
    payload.put_slice(name_bytes);
    if let Some(root) = root {
        payload.put_slice(root);
    }
    for n in nodes {
        payload.put_u32_le(n[0]);
        payload.put_u32_le(n[1]);
        payload.put_u32_le(n[2]);
    }
    payload.put_slice(records);
    payload.put_slice(strings);
    let checksum = fnv1a(&payload);

    let mut out = BytesMut::with_capacity(HEADER_LEN + payload.len());
    out.put_slice(MAGIC);
    out.put_u16_le(version);
    out.put_u16_le(u16::try_from(name_bytes.len()).expect("database name exceeds u16 length"));
    out.put_u32_le(u32::try_from(nodes.len()).expect("node count exceeds u32"));
    out.put_u32_le(record_count);
    out.put_u32_le(u32::try_from(strings.len()).expect("string table length exceeds u32"));
    out.put_u64_le(checksum);
    out.put_slice(&payload);
    out.freeze()
}

/// Serialize `(prefix, record)` entries into an RGDB **v2** image.
///
/// Records are deduplicated by their fixed-width encoding and strings
/// by content, so the same `(prefix, record)` input produces the same
/// answers as [`rgdb::write`] — the v1↔v2 differential suite holds the
/// two writers to exact `lookup_compact` agreement.
pub fn write<'a, I>(name: &str, entries: I) -> Bytes
where
    I: IntoIterator<Item = (Prefix, &'a LocationRecord)>,
{
    let t = build_tables(entries);
    let nodes = flatten_trie(&t.trie);
    assemble(
        VERSION2,
        name,
        None,
        &nodes,
        &t.records,
        &t.strings,
        t.record_count,
    )
}

/// Serialize `(prefix, record)` entries into an RGDB **v2.1** image:
/// identical record/string encodings, plus the stride-16 root table and
/// level-order node placement described in the module docs. Answers are
/// identical to [`write`]; only the memory-access pattern changes.
pub fn write_v21<'a, I>(name: &str, entries: I) -> Bytes
where
    I: IntoIterator<Item = (Prefix, &'a LocationRecord)>,
{
    let t = build_tables(entries);
    let nodes = bfs_nodes(&t.trie);
    let root = build_root_table(&mut |idx: u32| {
        let n = nodes
            .get(ix(idx))
            .expect("writer node links stay in bounds");
        Ok((n[0], n[1], n[2]))
    })
    .expect("writer-side root-table derivation cannot fail");
    assemble(
        VERSION21,
        name,
        Some(&root),
        &nodes,
        &t.records,
        &t.strings,
        t.record_count,
    )
}

// ---- reader -----------------------------------------------------------------

/// One record's fields, with strings still as table offsets — the
/// borrow-free intermediate both lookup paths build from.
#[derive(Clone, Copy)]
struct RawRecord {
    granularity: Granularity,
    country: Option<CountryCode>,
    region_off: Option<u32>,
    city_off: Option<u32>,
    coord: Option<Coordinate>,
}

/// Zero-copy, lock-free reader over a validated RGDB v2 image.
///
/// [`Rgdb2Reader::open`] walks every node and record once; after that,
/// lookups are pure pointer arithmetic over the image bytes — no decode
/// cache, no mutex, no per-lookup allocation on the compact path.
/// Region/city strings are borrowed from the image and interned at the
/// call site, never copied into reader-owned state.
pub struct Rgdb2Reader {
    image: Bytes,
    name: String,
    /// Whether the image carries a stride-16 root table (v2.1).
    has_root: bool,
    /// Absolute start of the root table (equals `nodes_start` on v2).
    root_start: usize,
    nodes_start: usize,
    node_count: u32,
    records_start: usize,
    record_count: u32,
    strings_start: usize,
    strings_len: usize,
}

impl std::fmt::Debug for Rgdb2Reader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rgdb2Reader")
            .field("name", &self.name)
            .field("root_table", &self.has_root)
            .field("node_count", &self.node_count)
            .field("record_count", &self.record_count)
            .field("strings_len", &self.strings_len)
            .field("image_len", &self.image.len())
            .finish()
    }
}

impl Rgdb2Reader {
    /// Validate and open a v2 or v2.1 image. All structural validation
    /// happens here — node links, record indices, flag canonicality,
    /// string offsets/UTF-8, coordinate ranges, and (v2.1) level-order
    /// placement plus root-table canonicality — so lookups never parse.
    pub fn open(image: Bytes) -> Result<Rgdb2Reader, RgdbError> {
        let mut h = image.get(..HEADER_LEN).ok_or(RgdbError::Truncated)?;
        let mut magic = [0u8; 4];
        h.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(RgdbError::BadMagic);
        }
        let version = h.get_u16_le();
        if version != VERSION2 && version != VERSION21 {
            return Err(RgdbError::BadVersion(version));
        }
        let has_root = version == VERSION21;
        let name_len = usize::from(h.get_u16_le());
        let node_count = h.get_u32_le();
        let record_count = h.get_u32_le();
        let strings_len = ix(h.get_u32_le());
        let checksum = h.get_u64_le();

        let root_start = HEADER_LEN + name_len;
        let nodes_start = root_start + if has_root { ROOT_TABLE_BYTES } else { 0 };
        let records_start = nodes_start + ix(node_count) * NODE_WIDTH;
        let strings_start = records_start + ix(record_count) * RECORD_WIDTH;
        let expected_total = strings_start + strings_len;
        if image.len() != expected_total {
            return Err(RgdbError::Truncated);
        }
        let payload = image.get(HEADER_LEN..).ok_or(RgdbError::Truncated)?;
        if fnv1a(payload) != checksum {
            return Err(RgdbError::ChecksumMismatch);
        }
        if node_count == 0 {
            // Byte 8 is the node_count field in the fixed header.
            return Err(RgdbError::corrupt(
                Section::Header,
                8,
                "nonzero node count (trie needs a root)",
            ));
        }
        let name_bytes = image
            .get(HEADER_LEN..root_start)
            .ok_or(RgdbError::Truncated)?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| RgdbError::corrupt(Section::Name, HEADER_LEN, "UTF-8 database name"))?
            .to_string();
        let reader = Rgdb2Reader {
            image,
            name,
            has_root,
            root_start,
            nodes_start,
            node_count,
            records_start,
            record_count,
            strings_start,
            strings_len,
        };
        reader.validate()?;
        Ok(reader)
    }

    /// The open-time validation sweep: every node link and every record
    /// field is checked once so the lookup path never can fail
    /// structurally on a reader that opened. v2.1 images additionally
    /// prove the level-order placement invariant and the root table's
    /// canonicality here, so the fast paths below can trust both.
    fn validate(&self) -> Result<(), RgdbError> {
        // Running child counter for the v2.1 level-order invariant:
        // scanning nodes in index order, the non-NONE child links must
        // be exactly 1, 2, 3, … (the BFS numbering). One O(n) pass also
        // proves every node is reachable exactly once from the root —
        // acyclicity included — which the frontier batch walk relies on.
        let mut next_child = 1u32;
        for idx in 0..self.node_count {
            let (left, right, record) = self.node(idx)?;
            let at = self.nodes_start + ix(idx) * NODE_WIDTH;
            for link in [left, right] {
                if link != NONE {
                    if link >= self.node_count {
                        return Err(RgdbError::corrupt(
                            Section::Nodes,
                            at,
                            "node link within node_count",
                        ));
                    }
                    if self.has_root {
                        if link != next_child {
                            return Err(RgdbError::corrupt(
                                Section::Nodes,
                                at,
                                "level-order child placement",
                            ));
                        }
                        next_child = next_child.wrapping_add(1);
                    }
                }
            }
            if record != NONE && record >= self.record_count {
                return Err(RgdbError::corrupt(
                    Section::Nodes,
                    at,
                    "record index within record_count",
                ));
            }
        }
        if self.has_root && next_child != self.node_count {
            return Err(RgdbError::corrupt(
                Section::Nodes,
                self.nodes_start,
                "every node placed in level order",
            ));
        }
        for idx in 0..self.record_count {
            let raw = self.raw_record(idx)?;
            // Resolve both string offsets so lookup-time borrows are
            // known in-bounds, valid UTF-8.
            for off in [raw.region_off, raw.city_off].into_iter().flatten() {
                self.str_at(off)?;
            }
        }
        if self.has_root {
            // Re-derive the whole table from the (now validated) node
            // array and require byte equality: the root table is pure
            // acceleration and must never be able to change an answer.
            let expected = build_root_table(&mut |idx| self.node(idx))?;
            let stored = self
                .image
                .get(self.root_start..self.root_start + ROOT_TABLE_BYTES)
                .ok_or(RgdbError::Truncated)?;
            if stored != expected.as_slice() {
                let byte = stored
                    .iter()
                    .zip(&expected)
                    .position(|(a, b)| a != b)
                    .unwrap_or(0);
                return Err(RgdbError::corrupt(
                    Section::RootTable,
                    self.root_start + (byte / ROOT_ENTRY_WIDTH) * ROOT_ENTRY_WIDTH,
                    "canonical stride-16 root entry",
                ));
            }
        }
        Ok(())
    }

    /// Database display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of deduplicated records in the record array.
    pub fn record_count(&self) -> u32 {
        self.record_count
    }

    /// Total image size in bytes.
    pub fn image_len(&self) -> usize {
        self.image.len()
    }

    /// On-disk header version of the opened image (2 or 3).
    pub fn version(&self) -> u16 {
        if self.has_root {
            VERSION21
        } else {
            VERSION2
        }
    }

    /// Whether this image carries the v2.1 stride-16 root table.
    pub fn has_root_table(&self) -> bool {
        self.has_root
    }

    #[inline]
    fn node(&self, idx: u32) -> Result<(u32, u32, u32), RgdbError> {
        let at = self.nodes_start + ix(idx) * NODE_WIDTH;
        if idx >= self.node_count {
            return Err(RgdbError::corrupt(
                Section::Nodes,
                at,
                "node link within node_count",
            ));
        }
        let mut b = self
            .image
            .get(at..at + NODE_WIDTH)
            .ok_or_else(|| RgdbError::corrupt(Section::Nodes, at, "12-byte node in bounds"))?;
        Ok((b.get_u32_le(), b.get_u32_le(), b.get_u32_le()))
    }

    /// Read and canonically validate the fixed-width record at `idx`.
    #[inline]
    fn raw_record(&self, idx: u32) -> Result<RawRecord, RgdbError> {
        let at = self.records_start + ix(idx) * RECORD_WIDTH;
        if idx >= self.record_count {
            return Err(RgdbError::corrupt(
                Section::Records,
                at,
                "record index within record_count",
            ));
        }
        let mut b = self
            .image
            .get(at..at + RECORD_WIDTH)
            .ok_or_else(|| RgdbError::corrupt(Section::Records, at, "20-byte record in bounds"))?;
        let flags = b.get_u8();
        if flags & 0xF0 != 0 {
            return Err(RgdbError::corrupt(
                Section::Records,
                at,
                "known record flag bits",
            ));
        }
        let gran = Granularity::from_id(b.get_u8())
            .ok_or_else(|| RgdbError::corrupt(Section::Records, at + 1, "known granularity id"))?;
        let ca = b.get_u8();
        let cb = b.get_u8();
        let country = if flags & 1 != 0 {
            Some(CountryCode::new(ca, cb).ok_or_else(|| {
                RgdbError::corrupt(Section::Records, at + 2, "ASCII country code")
            })?)
        } else {
            if (ca, cb) != (0, 0) {
                return Err(RgdbError::corrupt(
                    Section::Records,
                    at + 2,
                    "zeroed absent country field",
                ));
            }
            None
        };
        let region_off = b.get_u32_le();
        let region_off = if flags & 2 != 0 {
            if region_off == NONE {
                return Err(RgdbError::corrupt(
                    Section::Records,
                    at + 4,
                    "present region offset",
                ));
            }
            Some(region_off)
        } else {
            if region_off != NONE {
                return Err(RgdbError::corrupt(
                    Section::Records,
                    at + 4,
                    "NONE absent region offset",
                ));
            }
            None
        };
        let city_off = b.get_u32_le();
        let city_off = if flags & 4 != 0 {
            if city_off == NONE {
                return Err(RgdbError::corrupt(
                    Section::Records,
                    at + 8,
                    "present city offset",
                ));
            }
            Some(city_off)
        } else {
            if city_off != NONE {
                return Err(RgdbError::corrupt(
                    Section::Records,
                    at + 8,
                    "NONE absent city offset",
                ));
            }
            None
        };
        let lat = b.get_i32_le();
        let lon = b.get_i32_le();
        let coord = if flags & 8 != 0 {
            Some(
                Coordinate::new(f64::from(lat) / 1e6, f64::from(lon) / 1e6).map_err(|_| {
                    RgdbError::corrupt(Section::Records, at + 12, "coordinate within ±90/±180")
                })?,
            )
        } else {
            if (lat, lon) != (0, 0) {
                return Err(RgdbError::corrupt(
                    Section::Records,
                    at + 12,
                    "zeroed absent coordinate field",
                ));
            }
            None
        };
        Ok(RawRecord {
            granularity: gran,
            country,
            region_off,
            city_off,
            coord,
        })
    }

    /// Borrow the string at table offset `off` straight from the image.
    #[inline]
    fn str_at(&self, off: u32) -> Result<&str, RgdbError> {
        let at = ix(off);
        let abs = self.strings_start + at;
        if at >= self.strings_len {
            return Err(RgdbError::corrupt(
                Section::Strings,
                abs,
                "string offset within string table",
            ));
        }
        let len = usize::from(*self.image.get(abs).ok_or_else(|| {
            RgdbError::corrupt(Section::Strings, abs, "string length byte in bounds")
        })?);
        if at + 1 + len > self.strings_len {
            return Err(RgdbError::corrupt(
                Section::Strings,
                abs + 1,
                "string bytes within string table",
            ));
        }
        let bytes = self.image.get(abs + 1..abs + 1 + len).ok_or_else(|| {
            RgdbError::corrupt(Section::Strings, abs + 1, "string bytes in bounds")
        })?;
        std::str::from_utf8(bytes)
            .map_err(|_| RgdbError::corrupt(Section::Strings, abs + 1, "UTF-8 string bytes"))
    }

    /// Read root-table entry `hi` (an address's top sixteen bits):
    /// `(record, node)`, either side possibly `NONE`.
    #[inline]
    fn root_entry(&self, hi: u32) -> Result<(u32, u32), RgdbError> {
        let at = self.root_start + ix(hi) * ROOT_ENTRY_WIDTH;
        let mut b = self.image.get(at..at + ROOT_ENTRY_WIDTH).ok_or_else(|| {
            RgdbError::corrupt(Section::RootTable, at, "8-byte root entry in bounds")
        })?;
        Ok((b.get_u32_le(), b.get_u32_le()))
    }

    /// Resolve `addr` to its longest-prefix record index. On a v2.1
    /// image the stride-16 root table replaces the first sixteen
    /// dependent node hops with one indexed load; the remaining walk
    /// (if any) starts at the depth-16 subtrie root. v2 images take the
    /// classic bitwise walk from the root.
    #[inline]
    fn locate(&self, addr: u32) -> Result<Option<u32>, RgdbError> {
        if !self.has_root {
            return Ok(self
                .deepest_match(Ipv4Addr::from(addr))?
                .map(|(idx, _)| idx));
        }
        let (mut best, mut node) = self.root_entry(addr >> 16)?;
        if node != NONE {
            for depth in 16..=32u32 {
                let (left, right, record) = self.node(node)?;
                if record != NONE {
                    best = record;
                }
                if depth == 32 {
                    break;
                }
                let bit = (addr >> (31 - depth)) & 1;
                let next = if bit == 0 { left } else { right };
                if next == NONE {
                    break;
                }
                node = next;
            }
        }
        Ok((best != NONE).then_some(best))
    }

    /// Walk the trie MSB-first and return the deepest record index on
    /// the path together with its depth — the longest-prefix match.
    /// Works on both layouts (v2.1 keeps the full trie); the root-table
    /// fast path in [`Rgdb2Reader::locate`] is preferred when the match
    /// depth is not needed.
    fn deepest_match(&self, ip: Ipv4Addr) -> Result<Option<(u32, u8)>, RgdbError> {
        let addr = u32::from(ip);
        let mut node = 0u32;
        let mut best: Option<(u32, u8)> = None;
        for depth in 0..=32u32 {
            let (left, right, record) = self.node(node)?;
            if record != NONE {
                best = Some((record, u8::try_from(depth).expect("trie depth <= 32")));
            }
            if depth == 32 {
                break;
            }
            let bit = (addr >> (31 - depth)) & 1;
            let next = if bit == 0 { left } else { right };
            if next == NONE {
                break;
            }
            node = next;
        }
        Ok(best)
    }

    /// Prefix length of the longest match for `ip`. `None` when no
    /// prefix on the walk carries a record — same contract as
    /// [`RgdbReader::match_len`].
    pub fn match_len(&self, ip: Ipv4Addr) -> Result<Option<u8>, RgdbError> {
        Ok(self.deepest_match(ip)?.map(|(_, len)| len))
    }

    /// Decode the record at `idx` trusting the open-time validation
    /// sweep: canonicality violations cannot occur on an image that
    /// opened, so this path drops their checks — staying memory-safe
    /// through checked slicing — and returns `None` only on latent
    /// corruption, which the callers degrade to a miss exactly like
    /// the validating path does.
    #[inline]
    fn raw_record_lean(&self, idx: u32) -> Option<RawRecord> {
        if idx >= self.record_count {
            return None;
        }
        let at = self.records_start + ix(idx) * RECORD_WIDTH;
        let mut b = self.image.get(at..at + RECORD_WIDTH)?;
        let flags = b.get_u8();
        let gran = Granularity::from_id(b.get_u8())?;
        let ca = b.get_u8();
        let cb = b.get_u8();
        let country = if flags & 1 != 0 {
            Some(CountryCode::new(ca, cb)?)
        } else {
            None
        };
        let region_off = b.get_u32_le();
        let city_off = b.get_u32_le();
        let lat = b.get_i32_le();
        let lon = b.get_i32_le();
        let coord = if flags & 8 != 0 {
            Some(Coordinate::new(f64::from(lat) / 1e6, f64::from(lon) / 1e6).ok()?)
        } else {
            None
        };
        Some(RawRecord {
            granularity: gran,
            country,
            region_off: (flags & 2 != 0).then_some(region_off),
            city_off: (flags & 4 != 0).then_some(city_off),
            coord,
        })
    }

    /// Build the compact answer for record `idx`, borrowing strings
    /// from the image into the interner.
    fn record_compact(
        &self,
        idx: u32,
        interner: &mut LocationInterner,
    ) -> Result<CompactRecord, RgdbError> {
        let raw = self.raw_record(idx)?;
        let region_id = match raw.region_off {
            Some(off) => Some(interner.intern(self.str_at(off)?)),
            None => None,
        };
        let city_id = match raw.city_off {
            Some(off) => Some(interner.intern(self.str_at(off)?)),
            None => None,
        };
        Ok(CompactRecord {
            country: raw.country,
            region_id,
            city_id,
            coord: raw.coord,
            granularity: raw.granularity,
        })
    }

    /// Build the owning answer for record `idx`.
    fn record_owned(&self, idx: u32) -> Result<LocationRecord, RgdbError> {
        let raw = self.raw_record(idx)?;
        let region = match raw.region_off {
            Some(off) => Some(self.str_at(off)?.to_string()),
            None => None,
        };
        let city = match raw.city_off {
            Some(off) => Some(self.str_at(off)?.to_string()),
            None => None,
        };
        Ok(LocationRecord {
            country: raw.country,
            region,
            city,
            coord: raw.coord,
            granularity: raw.granularity,
        })
    }

    /// Longest-prefix-match lookup returning a structural error on
    /// latent corruption (unreachable on an image that opened — the
    /// validation sweep covered every node and record).
    pub fn try_lookup(&self, ip: Ipv4Addr) -> Result<Option<LocationRecord>, RgdbError> {
        match self.locate(u32::from(ip))? {
            None => Ok(None),
            Some(idx) => self.record_owned(idx).map(Some),
        }
    }

    /// Batched compact lookup — the v2.1 hot path. Addresses are sorted
    /// and duplicates collapsed; every unique address's walk is seeded
    /// in one pass (from the root table on v2.1, from the trie root on
    /// v2), and the live walks then advance **level by level across the
    /// whole batch** (a breadth-first frontier, retired in place as
    /// walks bottom out). Because v2.1 places nodes in level order,
    /// each sweep over the sorted frontier reads a monotonically
    /// increasing node range — near-sequential memory traffic instead
    /// of one dependent pointer chase per address. Answers are interned
    /// in the *original* order with one compact conversion per distinct
    /// record, so output and interner ids are identical to the
    /// per-address loop.
    fn batch_compact(
        &self,
        ips: &[Ipv4Addr],
        interner: &mut LocationInterner,
    ) -> Vec<Option<CompactRecord>> {
        // Sort keys packed as `addr << 32 | pos`: one u64 compare-and-
        // swap instead of a 16-byte tuple, and `pos` rides along for the
        // scatter. Shard sizes keep `pos` far below 2^32.
        let mut order: Vec<u64> = ips
            .iter()
            .enumerate()
            .map(|(pos, ip)| (u64::from(u32::from(*ip)) << 32) | pos as u64) // xtask-allow: RG003 usize→u64 is widening on every supported target
            .collect();
        order.sort_unstable();
        // Unique ascending addresses; duplicates collapse to one walk.
        let mut uniq: Vec<u32> = Vec::with_capacity(order.len());
        for packed in &order {
            let addr = u32::try_from(packed >> 32).expect("upper half is an address");
            if uniq.last() != Some(&addr) {
                uniq.push(addr);
            }
        }
        // The whole node array as one slice: its length *is* the bounds
        // check, so the per-level loop below never consults node_count
        // or re-derives section offsets.
        let nodes: &[u8] = self
            .image
            .get(self.nodes_start..self.nodes_start + ix(self.node_count) * NODE_WIDTH)
            .unwrap_or(&[]);
        // Pass 1 (sorted): seed one walk per unique address. Each live
        // walk carries `(node, slot, rest, best)` — `rest` is the
        // address with consumed bits shifted off (next branch bit is the
        // MSB) and `best` the deepest record so far, written back to
        // `best[slot]` only when the walk retires.
        let mut best: Vec<u32> = vec![NONE; uniq.len()];
        let mut frontier: Vec<(u32, u32, u32, u32)> = Vec::with_capacity(uniq.len());
        let mut depth: u32 = if self.has_root { 16 } else { 0 };
        if self.has_root {
            // The root table as one slice, like `nodes` above: sorted
            // unique addresses read its entries in ascending order.
            let root: &[u8] = self
                .image
                .get(self.root_start..self.root_start + ROOT_TABLE_BYTES)
                .unwrap_or(&[]);
            for (slot, addr) in uniq.iter().enumerate() {
                let slot32 = u32::try_from(slot).expect("unique u32 addresses fit a u32 slot");
                let at = ix(addr >> 16) * ROOT_ENTRY_WIDTH;
                if let Some(mut e) = root.get(at..at + ROOT_ENTRY_WIDTH) {
                    let record = e.get_u32_le();
                    let node = e.get_u32_le();
                    if node != NONE {
                        frontier.push((node, slot32, addr << 16, record));
                    } else if record != NONE {
                        if let Some(b) = best.get_mut(slot) {
                            *b = record;
                        }
                    }
                }
            }
        } else {
            frontier.extend(uniq.iter().enumerate().map(|(slot, addr)| {
                (
                    0u32,
                    u32::try_from(slot).expect("unique u32 addresses fit a u32 slot"),
                    *addr,
                    NONE,
                )
            }));
        }
        // Advance the whole frontier one trie level at a time, keeping
        // survivors compacted at the front in sorted order.
        while !frontier.is_empty() && depth <= 32 {
            let mut keep = 0usize;
            for i in 0..frontier.len() {
                let (node, slot32, rest, mut walk_best) =
                    *frontier.get(i).expect("i < frontier.len()");
                let at = ix(node) * NODE_WIDTH;
                let Some(mut b) = nodes.get(at..at + NODE_WIDTH) else {
                    // Unreachable on a validated image; a latent read
                    // failure degrades to a miss, matching the
                    // per-address path.
                    if let Some(slot) = best.get_mut(ix(slot32)) {
                        *slot = NONE;
                    }
                    continue;
                };
                let left = b.get_u32_le();
                let right = b.get_u32_le();
                let record = b.get_u32_le();
                if record != NONE {
                    walk_best = record;
                }
                if depth < 32 {
                    let next = if rest & 0x8000_0000 == 0 { left } else { right };
                    if next != NONE {
                        if let Some(f) = frontier.get_mut(keep) {
                            *f = (next, slot32, rest << 1, walk_best);
                        }
                        keep += 1;
                        continue;
                    }
                }
                if let Some(slot) = best.get_mut(ix(slot32)) {
                    *slot = walk_best;
                }
            }
            frontier.truncate(keep);
            depth += 1;
        }
        // Scatter the per-unique-address answers back to input order.
        let mut located: Vec<Option<u32>> = vec![None; ips.len()];
        let mut cursor = 0usize;
        let mut prev: Option<u32> = None;
        for packed in order {
            let addr = u32::try_from(packed >> 32).expect("upper half is an address");
            let pos = ix(u32::try_from(packed & 0xFFFF_FFFF).expect("lower half is a position"));
            if prev.is_some() && prev != Some(addr) {
                cursor += 1;
            }
            prev = Some(addr);
            let rec = best.get(cursor).copied().unwrap_or(NONE);
            if let Some(slot) = located.get_mut(pos) {
                *slot = (rec != NONE).then_some(rec);
            }
        }
        // Pass 2 (original order): compact each distinct record once so
        // interner id assignment matches the sequential loop. The memo
        // is a dense array over record indices — one indexed load per
        // address, no hashing — with the decoded records packed into a
        // side vector so the dense slots stay 4 bytes each.
        let mut memo_slot: Vec<u32> = vec![NONE; ix(self.record_count)];
        let mut memo_val: Vec<CompactRecord> = Vec::new();
        // Dense string-offset → interner-id cache: the writer dedups
        // the string table, so distinct offsets are few and every
        // repeat skips the interner's hash probe. First-seen intern
        // order is untouched — the cache only short-circuits repeats.
        let mut sym: Vec<u32> = vec![NONE; self.strings_len];
        let mut intern_off = |off: u32, interner: &mut LocationInterner| -> Option<u32> {
            match sym.get(ix(off)).copied() {
                Some(s) if s != NONE => {
                    interner.count_ref();
                    Some(s)
                }
                _ => {
                    let id = interner.intern(self.str_at(off).ok()?);
                    if let Some(s) = sym.get_mut(ix(off)) {
                        *s = id;
                    }
                    Some(id)
                }
            }
        };
        located
            .into_iter()
            .map(|slot| {
                let idx = slot?;
                match memo_slot.get(ix(idx)).copied() {
                    Some(s) if s != NONE => memo_val.get(ix(s)).copied(),
                    _ => {
                        let raw = self.raw_record_lean(idx)?;
                        let region_id = match raw.region_off {
                            Some(off) => Some(intern_off(off, interner)?),
                            None => None,
                        };
                        let city_id = match raw.city_off {
                            Some(off) => Some(intern_off(off, interner)?),
                            None => None,
                        };
                        let compact = CompactRecord {
                            country: raw.country,
                            region_id,
                            city_id,
                            coord: raw.coord,
                            granularity: raw.granularity,
                        };
                        if let Some(s) = memo_slot.get_mut(ix(idx)) {
                            *s = u32::try_from(memo_val.len()).expect("distinct records fit a u32");
                            memo_val.push(compact);
                        }
                        Some(compact)
                    }
                }
            })
            .collect()
    }
}

impl GeoDatabase for Rgdb2Reader {
    fn name(&self) -> &str {
        &self.name
    }

    fn lookup(&self, ip: Ipv4Addr) -> Option<LocationRecord> {
        // Images validated at open; treat latent corruption as a miss.
        self.try_lookup(ip).ok().flatten()
    }

    fn lookup_compact(
        &self,
        ip: Ipv4Addr,
        interner: &mut LocationInterner,
    ) -> Option<CompactRecord> {
        let idx = self.locate(u32::from(ip)).ok().flatten()?;
        self.record_compact(idx, interner).ok()
    }

    fn lookup_batch(
        &self,
        ips: &[Ipv4Addr],
        interner: &mut LocationInterner,
    ) -> Vec<Option<CompactRecord>> {
        self.batch_compact(ips, interner)
    }
}

// ---- version dispatch -------------------------------------------------------

/// A reader over either RGDB format, dispatched on the header version
/// at open. This is the type serving and tooling paths hold so v1 and
/// v2 images are interchangeable — hot-swapping a daemon from a v1 to a
/// v2 image is one [`AnyReader::open`] away.
pub enum AnyReader {
    /// A v1 image behind the decode-once cache reader.
    V1(RgdbReader),
    /// A v2 image behind the zero-copy flat reader.
    V2(Rgdb2Reader),
    /// A v2.1 image (stride-16 root table + level-order nodes) behind
    /// the same zero-copy reader in root-table mode.
    V21(Rgdb2Reader),
}

impl AnyReader {
    /// Open an image of any version: magic is checked first, then the
    /// version field picks the reader, which performs its own full
    /// validation.
    pub fn open(image: Bytes) -> Result<AnyReader, RgdbError> {
        let header = image.get(..6).ok_or(RgdbError::Truncated)?;
        if header.get(..4) != Some(MAGIC.as_slice()) {
            return Err(RgdbError::BadMagic);
        }
        let mut v = header.get(4..6).ok_or(RgdbError::Truncated)?;
        match v.get_u16_le() {
            1 => RgdbReader::open(image).map(AnyReader::V1),
            2 => Rgdb2Reader::open(image).map(AnyReader::V2),
            3 => Rgdb2Reader::open(image).map(AnyReader::V21),
            other => Err(RgdbError::BadVersion(other)),
        }
    }

    /// Format version of the opened image (1, 2, or 3 for v2.1).
    pub fn version(&self) -> u16 {
        match self {
            AnyReader::V1(_) => 1,
            AnyReader::V2(_) => VERSION2,
            AnyReader::V21(_) => VERSION21,
        }
    }

    /// Database display name.
    pub fn name(&self) -> &str {
        match self {
            AnyReader::V1(r) => GeoDatabase::name(r),
            AnyReader::V2(r) | AnyReader::V21(r) => r.name(),
        }
    }

    /// Number of deduplicated records.
    pub fn record_count(&self) -> u32 {
        match self {
            AnyReader::V1(r) => r.record_count(),
            AnyReader::V2(r) | AnyReader::V21(r) => r.record_count(),
        }
    }

    /// Total image size in bytes.
    pub fn image_len(&self) -> usize {
        match self {
            AnyReader::V1(r) => r.image_len(),
            AnyReader::V2(r) | AnyReader::V21(r) => r.image_len(),
        }
    }

    /// Prefix length of the longest match for `ip`.
    pub fn match_len(&self, ip: Ipv4Addr) -> Result<Option<u8>, RgdbError> {
        match self {
            AnyReader::V1(r) => r.match_len(ip),
            AnyReader::V2(r) | AnyReader::V21(r) => r.match_len(ip),
        }
    }

    /// Longest-prefix-match lookup returning a parse error on
    /// corruption.
    pub fn try_lookup(&self, ip: Ipv4Addr) -> Result<Option<LocationRecord>, RgdbError> {
        match self {
            AnyReader::V1(r) => r.try_lookup(ip),
            AnyReader::V2(r) | AnyReader::V21(r) => r.try_lookup(ip),
        }
    }
}

impl GeoDatabase for AnyReader {
    fn name(&self) -> &str {
        AnyReader::name(self)
    }

    fn lookup(&self, ip: Ipv4Addr) -> Option<LocationRecord> {
        match self {
            AnyReader::V1(r) => r.lookup(ip),
            AnyReader::V2(r) | AnyReader::V21(r) => r.lookup(ip),
        }
    }

    fn lookup_compact(
        &self,
        ip: Ipv4Addr,
        interner: &mut LocationInterner,
    ) -> Option<CompactRecord> {
        match self {
            AnyReader::V1(r) => r.lookup_compact(ip, interner),
            AnyReader::V2(r) | AnyReader::V21(r) => r.lookup_compact(ip, interner),
        }
    }

    fn lookup_batch(
        &self,
        ips: &[Ipv4Addr],
        interner: &mut LocationInterner,
    ) -> Vec<Option<CompactRecord>> {
        match self {
            AnyReader::V1(r) => r.lookup_batch(ips, interner),
            AnyReader::V2(r) | AnyReader::V21(r) => r.lookup_batch(ips, interner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rgdb;

    fn sample_records() -> Vec<(Prefix, LocationRecord)> {
        let city = LocationRecord {
            country: Some("US".parse().unwrap()),
            region: Some("USA Region 1".into()),
            city: Some("Springfield".into()),
            coord: Some(Coordinate::new(39.8, -89.6).unwrap()),
            granularity: Granularity::SubBlock,
        };
        let country = LocationRecord::country_level("DE".parse().unwrap(), Granularity::Aggregate);
        let centroid = LocationRecord {
            country: Some("FR".parse().unwrap()),
            region: None,
            city: None,
            coord: Some(Coordinate::new(46.2, 2.2).unwrap()),
            granularity: Granularity::Block24,
        };
        let empty_city = LocationRecord {
            country: Some("JP".parse().unwrap()),
            region: Some(String::new()),
            city: Some(String::new()),
            coord: None,
            granularity: Granularity::Block24,
        };
        vec![
            ("6.0.0.0/24".parse().unwrap(), city),
            ("31.0.0.0/16".parse().unwrap(), country),
            ("31.0.1.0/24".parse().unwrap(), centroid),
            ("77.1.0.0/24".parse().unwrap(), empty_city),
        ]
    }

    fn build() -> Rgdb2Reader {
        let recs = sample_records();
        let image = write("Test-DB", recs.iter().map(|(p, r)| (*p, r)));
        Rgdb2Reader::open(image).unwrap()
    }

    fn build21() -> Rgdb2Reader {
        let recs = sample_records();
        let image = write_v21("Test-DB", recs.iter().map(|(p, r)| (*p, r)));
        Rgdb2Reader::open(image).unwrap()
    }

    /// Prefixes shallower than, at, and deeper than the /16 root-table
    /// stride, so every entry shape (terminal record, subtrie handoff,
    /// empty) and every seeding path is exercised.
    fn stride_records() -> Vec<(Prefix, LocationRecord)> {
        let mk = |cc: &str, city: &str| LocationRecord {
            country: Some(cc.parse().unwrap()),
            region: None,
            city: Some(city.into()),
            coord: None,
            granularity: Granularity::Block24,
        };
        vec![
            ("8.0.0.0/6".parse().unwrap(), mk("US", "shallow-6")),
            ("12.32.0.0/11".parse().unwrap(), mk("CA", "shallow-11")),
            ("12.34.0.0/16".parse().unwrap(), mk("GB", "exact-16")),
            ("12.34.128.0/17".parse().unwrap(), mk("DE", "deep-17")),
            ("12.34.129.0/28".parse().unwrap(), mk("FR", "deep-28")),
            ("200.1.2.240/32".parse().unwrap(), mk("JP", "host-32")),
        ]
    }

    const STRIDE_PROBES: [&str; 14] = [
        "8.0.0.1",
        "11.255.255.255",
        "12.32.0.5",
        "12.63.255.254",
        "12.34.0.1",
        "12.34.127.255",
        "12.34.128.1",
        "12.34.129.7",
        "12.34.129.15",
        "12.34.129.16",
        "200.1.2.240",
        "200.1.2.241",
        "1.2.3.4",
        "255.255.255.255",
    ];

    #[test]
    fn roundtrip_lookups() {
        for db in [build(), build21()] {
            roundtrip_lookups_on(&db);
        }
    }

    fn roundtrip_lookups_on(db: &Rgdb2Reader) {
        assert_eq!(db.name(), "Test-DB");
        let r = db.lookup("6.0.0.200".parse().unwrap()).unwrap();
        assert_eq!(r.city.as_deref(), Some("Springfield"));
        assert_eq!(r.granularity, Granularity::SubBlock);
        let c = r.coord.unwrap();
        assert!((c.lat() - 39.8).abs() < 1e-5);
        // Longest-prefix: /24 centroid inside the /16 country record.
        let r = db.lookup("31.0.1.7".parse().unwrap()).unwrap();
        assert!(r.coord.is_some() && r.city.is_none());
        let r = db.lookup("31.0.99.1".parse().unwrap()).unwrap();
        assert_eq!(r.country.unwrap().as_str(), "DE");
        assert!(db.lookup("99.0.0.1".parse().unwrap()).is_none());
        // v2 represents Some("") distinct from None.
        let r = db.lookup("77.1.0.9".parse().unwrap()).unwrap();
        assert_eq!(r.region.as_deref(), Some(""));
        assert_eq!(r.city.as_deref(), Some(""));
    }

    #[test]
    fn answers_and_match_len_agree_with_v1() {
        let recs = sample_records();
        let v1 = RgdbReader::open(rgdb::write("pair", recs.iter().map(|(p, r)| (*p, r)))).unwrap();
        let v2 = build();
        let mut i1 = LocationInterner::new();
        let mut i2 = LocationInterner::new();
        for ip in [
            "6.0.0.0",
            "6.0.0.255",
            "31.0.0.0",
            "31.0.1.255",
            "31.0.99.1",
            "77.1.0.1",
            "99.0.0.1",
            "0.0.0.0",
            "255.255.255.255",
        ] {
            let ip: Ipv4Addr = ip.parse().unwrap();
            assert_eq!(v1.try_lookup(ip).unwrap(), v2.try_lookup(ip).unwrap());
            assert_eq!(v1.match_len(ip).unwrap(), v2.match_len(ip).unwrap());
            assert_eq!(
                v1.lookup_compact(ip, &mut i1),
                v2.lookup_compact(ip, &mut i2)
            );
        }
        assert_eq!(i1, i2);
    }

    #[test]
    fn batched_lookups_match_sequential() {
        let db = build();
        let ips: Vec<Ipv4Addr> = [
            "31.0.1.7",
            "6.0.0.200",
            "99.0.0.1",
            "6.0.0.200",
            "77.1.0.3",
            "31.0.99.1",
            "6.0.0.1",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        let mut seq_interner = LocationInterner::new();
        let seq: Vec<_> = ips
            .iter()
            .map(|ip| db.lookup_compact(*ip, &mut seq_interner))
            .collect();
        let mut batch_interner = LocationInterner::new();
        let batch = db.lookup_batch(&ips, &mut batch_interner);
        assert_eq!(seq, batch);
        assert_eq!(seq_interner, batch_interner);
        assert!(db.lookup_batch(&[], &mut batch_interner).is_empty());
    }

    #[test]
    fn v21_agrees_with_v2_on_every_probe() {
        for recs in [sample_records(), stride_records()] {
            let v2 = Rgdb2Reader::open(write("pair", recs.iter().map(|(p, r)| (*p, r)))).unwrap();
            let v21 =
                Rgdb2Reader::open(write_v21("pair", recs.iter().map(|(p, r)| (*p, r)))).unwrap();
            assert!(v21.has_root_table() && !v2.has_root_table());
            assert_eq!(v21.version(), 3);
            assert_eq!(v21.image_len(), v2.image_len() + ROOT_TABLE_BYTES);
            let mut i2 = LocationInterner::new();
            let mut i21 = LocationInterner::new();
            for ip in STRIDE_PROBES.iter().chain(&["6.0.0.200", "31.0.1.7"]) {
                let ip: Ipv4Addr = ip.parse().unwrap();
                assert_eq!(
                    v2.try_lookup(ip).unwrap(),
                    v21.try_lookup(ip).unwrap(),
                    "{ip}"
                );
                assert_eq!(
                    v2.match_len(ip).unwrap(),
                    v21.match_len(ip).unwrap(),
                    "{ip}"
                );
                assert_eq!(
                    v2.lookup_compact(ip, &mut i2),
                    v21.lookup_compact(ip, &mut i21),
                    "{ip}"
                );
            }
            assert_eq!(i2, i21, "interner id assignment must not depend on layout");
        }
    }

    #[test]
    fn v21_batched_lookups_match_sequential() {
        for recs in [sample_records(), stride_records()] {
            let db = Rgdb2Reader::open(write_v21("b", recs.iter().map(|(p, r)| (*p, r)))).unwrap();
            // Duplicates included, unsorted order.
            let ips: Vec<Ipv4Addr> = STRIDE_PROBES
                .iter()
                .chain(STRIDE_PROBES.iter().rev())
                .chain(&["6.0.0.200", "12.34.129.7", "12.34.129.7"])
                .map(|s| s.parse().unwrap())
                .collect();
            let mut seq_interner = LocationInterner::new();
            let seq: Vec<_> = ips
                .iter()
                .map(|ip| db.lookup_compact(*ip, &mut seq_interner))
                .collect();
            let mut batch_interner = LocationInterner::new();
            let batch = db.lookup_batch(&ips, &mut batch_interner);
            assert_eq!(seq, batch);
            assert_eq!(seq_interner, batch_interner);
            assert!(db.lookup_batch(&[], &mut batch_interner).is_empty());
        }
    }

    #[test]
    fn v21_empty_database_and_default_route() {
        let image = write_v21("empty", std::iter::empty());
        let db = Rgdb2Reader::open(image).unwrap();
        assert!(db.lookup("1.2.3.4".parse().unwrap()).is_none());
        assert_eq!(db.record_count(), 0);

        let rec = LocationRecord::country_level("US".parse().unwrap(), Granularity::Aggregate);
        let entries = [(Prefix::default_route(), rec)];
        let image = write_v21("all", entries.iter().map(|(p, r)| (*p, r)));
        let db = Rgdb2Reader::open(image).unwrap();
        assert!(db.lookup("255.255.255.255".parse().unwrap()).is_some());
        assert!(db.lookup("0.0.0.0".parse().unwrap()).is_some());
    }

    #[test]
    fn v21_rejects_root_table_and_placement_corruption() {
        let recs = stride_records();
        let image = write_v21("x", recs.iter().map(|(p, r)| (*p, r)));
        let db = Rgdb2Reader::open(image.clone()).unwrap();

        // A flipped root-table entry fails the canonical re-derivation
        // and is attributed to the root-table section.
        let err = corrupt_at(&image, db.root_start, 0x00).unwrap_err();
        assert_eq!(err.context().unwrap().section, Section::RootTable);
        assert_eq!(
            err.context().unwrap().expected,
            "canonical stride-16 root entry"
        );

        // An in-range but misplaced child link breaks the level-order
        // placement invariant.
        let err = corrupt_at(&image, db.nodes_start, 2).unwrap_err();
        assert_eq!(err.context().unwrap().section, Section::Nodes);

        // Truncating inside the root table is caught by the layout
        // length check.
        assert!(matches!(
            Rgdb2Reader::open(image.slice(..db.root_start + 100)),
            Err(RgdbError::Truncated)
        ));

        // Relabeling a v2 image as v2.1 claims 512 KiB that is not
        // there.
        let v2 = write("x", recs.iter().map(|(p, r)| (*p, r)));
        let mut bytes = v2.to_vec();
        bytes[4] = 3;
        assert!(matches!(
            Rgdb2Reader::open(Bytes::from(bytes)),
            Err(RgdbError::Truncated)
        ));
    }

    #[test]
    fn v21_level_order_placement_holds_in_written_images() {
        for recs in [sample_records(), stride_records()] {
            let db = Rgdb2Reader::open(write_v21("lo", recs.iter().map(|(p, r)| (*p, r)))).unwrap();
            let mut next = 1u32;
            for idx in 0..db.node_count {
                let (left, right, _) = db.node(idx).unwrap();
                for link in [left, right] {
                    if link != NONE {
                        assert_eq!(link, next, "child of node {idx} out of level order");
                        next += 1;
                    }
                }
            }
            assert_eq!(next, db.node_count, "every node placed");
        }
    }

    #[test]
    fn records_and_strings_are_deduplicated() {
        let rec = LocationRecord {
            country: Some("US".parse().unwrap()),
            region: Some("Illinois".into()),
            city: Some("Illinois".into()),
            coord: None,
            granularity: Granularity::Block24,
        };
        let entries: Vec<(Prefix, LocationRecord)> = (0..100)
            .map(|i| {
                let p: Prefix = format!("6.0.{i}.0/24").parse().unwrap();
                (p, rec.clone())
            })
            .collect();
        let image = write("dedup", entries.iter().map(|(p, r)| (*p, r)));
        let db = Rgdb2Reader::open(image).unwrap();
        assert_eq!(db.record_count(), 1);
        // One record, one interned string ("Illinois" shared by region
        // and city): 20 record bytes + 1 len byte + 8 string bytes.
        assert_eq!(db.strings_len, 9);
    }

    #[test]
    fn detects_truncation_and_header_corruption() {
        let recs = sample_records();
        let image = write("t", recs.iter().map(|(p, r)| (*p, r)));
        for cut in [0, 3, HEADER_LEN - 1, image.len() - 1] {
            assert!(
                Rgdb2Reader::open(image.slice(..cut)).is_err(),
                "cut at {cut} not detected"
            );
        }
        let mut bytes = image.to_vec();
        let n = bytes.len();
        bytes[n - 3] ^= 0xFF;
        assert!(matches!(
            Rgdb2Reader::open(Bytes::from(bytes)),
            Err(RgdbError::ChecksumMismatch)
        ));
        let mut bytes = image.to_vec();
        bytes[4] = 0x07;
        assert!(matches!(
            Rgdb2Reader::open(Bytes::from(bytes)),
            Err(RgdbError::BadVersion(7))
        ));
    }

    /// Corrupt one payload byte and re-fix the checksum so the
    /// structural validation sweep is what fires.
    fn corrupt_at(image: &Bytes, at: usize, value: u8) -> Result<Rgdb2Reader, RgdbError> {
        let mut bytes = image.to_vec();
        bytes[at] = value;
        let sum = fnv1a(&bytes[HEADER_LEN..]).to_le_bytes();
        bytes[20..28].copy_from_slice(&sum);
        Rgdb2Reader::open(Bytes::from(bytes))
    }

    #[test]
    fn open_rejects_noncanonical_records_with_context() {
        let recs = sample_records();
        let image = write("x", recs.iter().map(|(p, r)| (*p, r)));
        let db = Rgdb2Reader::open(image.clone()).unwrap();
        let rec0 = db.records_start;
        // Unknown flag bit.
        let err = corrupt_at(&image, rec0, 0xFF).unwrap_err();
        assert_eq!(err.context().unwrap().section, Section::Records);
        // Unknown granularity.
        let err = corrupt_at(&image, rec0 + 1, 9).unwrap_err();
        assert_eq!(err.context().unwrap().expected, "known granularity id");
        // Record 0 in the sample set has all four flags set; point its
        // region offset past the string table.
        let err = corrupt_at(&image, rec0 + 4, 0xEE).unwrap_err();
        assert_eq!(err.context().unwrap().section, Section::Strings);
        // Bad node link: root's record index field.
        let node0 = db.nodes_start;
        let err = corrupt_at(&image, node0 + 8, 0x77).unwrap_err();
        assert_eq!(err.context().unwrap().section, Section::Nodes);
    }

    #[test]
    fn empty_database_and_default_route() {
        let image = write("empty", std::iter::empty());
        let db = Rgdb2Reader::open(image).unwrap();
        assert!(db.lookup("1.2.3.4".parse().unwrap()).is_none());
        assert_eq!(db.record_count(), 0);

        let rec = LocationRecord::country_level("US".parse().unwrap(), Granularity::Aggregate);
        let entries = [(Prefix::default_route(), rec)];
        let image = write("all", entries.iter().map(|(p, r)| (*p, r)));
        let db = Rgdb2Reader::open(image).unwrap();
        assert!(db.lookup("255.255.255.255".parse().unwrap()).is_some());
        assert!(db.lookup("0.0.0.0".parse().unwrap()).is_some());
    }

    #[test]
    fn any_reader_dispatches_on_version() {
        let recs = sample_records();
        let v1_image = rgdb::write("Any-DB", recs.iter().map(|(p, r)| (*p, r)));
        let v2_image = write("Any-DB", recs.iter().map(|(p, r)| (*p, r)));
        let v21_image = write_v21("Any-DB", recs.iter().map(|(p, r)| (*p, r)));
        let v1 = AnyReader::open(v1_image).unwrap();
        let v2 = AnyReader::open(v2_image).unwrap();
        let v21 = AnyReader::open(v21_image).unwrap();
        assert_eq!(v1.version(), 1);
        assert_eq!(v2.version(), 2);
        assert_eq!(v21.version(), 3);
        assert_eq!(v1.name(), "Any-DB");
        assert_eq!(v2.name(), "Any-DB");
        assert_eq!(v21.name(), "Any-DB");
        let ip: Ipv4Addr = "6.0.0.200".parse().unwrap();
        assert_eq!(v1.try_lookup(ip).unwrap(), v2.try_lookup(ip).unwrap());
        assert_eq!(v1.match_len(ip).unwrap(), v2.match_len(ip).unwrap());
        assert_eq!(v2.try_lookup(ip).unwrap(), v21.try_lookup(ip).unwrap());
        assert_eq!(v2.match_len(ip).unwrap(), v21.match_len(ip).unwrap());
        assert!(matches!(
            AnyReader::open(Bytes::from(b"XGDB\x01\x00rest".to_vec())),
            Err(RgdbError::BadMagic)
        ));
        assert!(matches!(
            AnyReader::open(Bytes::from(b"RGDB\x09\x00rest".to_vec())),
            Err(RgdbError::BadVersion(9))
        ));
    }
}

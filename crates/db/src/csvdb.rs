//! IP2Location-style CSV database format.
//!
//! Row shape (quoted, comma-separated), matching the DB11 column layout:
//!
//! ```text
//! "100663296","100663551","US","United States","USA Region 1","Springfield","39.800000","-89.600000"
//! ```
//!
//! First two columns are the inclusive `u32` range. Field *presence* is
//! encoded by quoting: an **absent** field is a blank cell (no quotes at
//! all), a **present** field is always quoted — so a present-but-empty
//! string renders as `""` and round-trips as `Some("")`, distinct from
//! the blank cell's `None`. Legacy rows that spell absence as a quoted
//! `"-"` (country/region/city) or a quoted-empty coordinate still parse
//! as absent. A trailing granularity column (non-standard, but explicit
//! beats sneaking state into coordinates) preserves the block-level flag.

use crate::inmem::{InMemoryDb, InMemoryDbBuilder};
use crate::record::{Granularity, LocationRecord};
use routergeo_geo::country::lookup;
use routergeo_geo::Coordinate;
use std::fmt;
use std::net::Ipv4Addr;

/// Errors parsing a CSV database.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// A line had the wrong number of columns.
    BadColumnCount {
        /// 1-based line number.
        line: usize,
        /// Number of columns found.
        got: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Field description.
        what: &'static str,
    },
    /// Ranges overlap after parsing.
    Overlap(String),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::BadColumnCount { line, got } => {
                write!(f, "line {line}: expected 9 columns, got {got}")
            }
            CsvError::BadField { line, what } => write!(f, "line {line}: bad {what}"),
            CsvError::Overlap(s) => write!(f, "overlapping ranges: {s}"),
        }
    }
}

impl std::error::Error for CsvError {}

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('"', ""))
}

/// Render one row: present fields quoted, absent fields as blank cells.
fn format_row(start: Ipv4Addr, end: Ipv4Addr, rec: &LocationRecord) -> String {
    let (lat, lon) = match rec.coord {
        Some(c) => (
            quote(&format!("{:.6}", c.lat())),
            quote(&format!("{:.6}", c.lon())),
        ),
        None => (String::new(), String::new()),
    };
    [
        quote(&u32::from(start).to_string()),
        quote(&u32::from(end).to_string()),
        rec.country.map(|c| quote(c.as_str())).unwrap_or_default(),
        rec.country
            .and_then(lookup)
            .map(|i| quote(i.name))
            .unwrap_or_default(),
        rec.region.as_deref().map(quote).unwrap_or_default(),
        rec.city.as_deref().map(quote).unwrap_or_default(),
        lat,
        lon,
        quote(&rec.granularity.id().to_string()),
    ]
    .join(",")
}

/// Serialize a database to CSV text.
pub fn write(db: &InMemoryDb) -> String {
    let mut out = String::new();
    for (start, end, rec) in db.iter() {
        out.push_str(&format_row(start, end, rec));
        out.push('\n');
    }
    out
}

/// Split one CSV line into presence-aware fields: a blank cell is
/// `None` (absent), a quoted cell is `Some(inner)` — which may be the
/// empty string. The format never embeds commas inside fields, so this
/// stays simple — but any non-blank cell must be quoted.
fn split_line(line: &str, lineno: usize) -> Result<Vec<Option<String>>, CsvError> {
    let mut fields = Vec::new();
    for raw in line.split(',') {
        let raw = raw.trim();
        if raw.is_empty() {
            fields.push(None);
            continue;
        }
        let inner = raw
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or(CsvError::BadField {
                line: lineno,
                what: "quoting",
            })?;
        fields.push(Some(inner.to_string()));
    }
    Ok(fields)
}

/// Parse CSV text into a database named `name`.
pub fn parse(name: &str, text: &str) -> Result<InMemoryDb, CsvError> {
    let mut builder = InMemoryDbBuilder::new(name);
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_line(line, lineno)?;
        if fields.len() != 9 {
            return Err(CsvError::BadColumnCount {
                line: lineno,
                got: fields.len(),
            });
        }
        // Numeric columns cannot be empty-present, so a blank cell and
        // a quoted-empty cell parse the same way there; only the string
        // columns distinguish `Some("")` (quoted-empty) from `None`
        // (blank cell).
        let numeric = |i: usize| -> &str { fields.get(i).and_then(|f| f.as_deref()).unwrap_or("") };
        let start: u32 = numeric(0).parse().map_err(|_| CsvError::BadField {
            line: lineno,
            what: "range start",
        })?;
        let end: u32 = numeric(1).parse().map_err(|_| CsvError::BadField {
            line: lineno,
            what: "range end",
        })?;
        // A country code is never empty, so quoted-empty and the legacy
        // quoted "-" both mean absent here.
        let country = match fields.get(2).and_then(|f| f.as_deref()) {
            None | Some("-") | Some("") => None,
            Some(s) => Some(s.parse().map_err(|_| CsvError::BadField {
                line: lineno,
                what: "country",
            })?),
        };
        // Region/city: blank cell = absent, quoted "-" = legacy absent,
        // any quoted content — including the empty string — is present.
        let region = match fields.get(4).and_then(|f| f.as_deref()) {
            None | Some("-") => None,
            Some(s) => Some(s.to_string()),
        };
        let city = match fields.get(5).and_then(|f| f.as_deref()) {
            None | Some("-") => None,
            Some(s) => Some(s.to_string()),
        };
        let coord = match (numeric(6), numeric(7)) {
            ("", "") => None,
            (lat, lon) => {
                let lat: f64 = lat.parse().map_err(|_| CsvError::BadField {
                    line: lineno,
                    what: "latitude",
                })?;
                let lon: f64 = lon.parse().map_err(|_| CsvError::BadField {
                    line: lineno,
                    what: "longitude",
                })?;
                Some(Coordinate::new(lat, lon).map_err(|_| CsvError::BadField {
                    line: lineno,
                    what: "coordinate range",
                })?)
            }
        };
        let granularity = numeric(8)
            .parse::<u8>()
            .ok()
            .and_then(Granularity::from_id)
            .ok_or(CsvError::BadField {
                line: lineno,
                what: "granularity",
            })?;
        builder.push_range(
            Ipv4Addr::from(start),
            Ipv4Addr::from(end),
            LocationRecord {
                country,
                region,
                city,
                coord,
                granularity,
            },
        );
    }
    builder
        .build()
        .map_err(|e| CsvError::Overlap(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeoDatabase;

    fn sample_db() -> InMemoryDb {
        let mut b = InMemoryDbBuilder::new("csv-test");
        b.push_prefix(
            "6.0.0.0/24".parse().unwrap(),
            LocationRecord {
                country: Some("US".parse().unwrap()),
                region: Some("USA Region 1".into()),
                city: Some("Springfield".into()),
                coord: Some(Coordinate::new(39.8, -89.6).unwrap()),
                granularity: Granularity::SubBlock,
            },
        );
        b.push_prefix(
            "31.0.0.0/24".parse().unwrap(),
            LocationRecord::country_level("DE".parse().unwrap(), Granularity::Aggregate),
        );
        b.build().unwrap()
    }

    #[test]
    fn parsed_csv_answers_the_compact_path() {
        // `parse` yields an `InMemoryDb`, so CSV-loaded databases get
        // the native allocation-free compact lookup for free.
        let db = parse("csv-test", &write(&sample_db())).unwrap();
        let mut interner = crate::LocationInterner::new();
        for ip in ["6.0.0.9", "31.0.0.77", "9.9.9.9"] {
            let ip: Ipv4Addr = ip.parse().unwrap();
            let compact = db.lookup_compact(ip, &mut interner);
            assert_eq!(compact.map(|c| c.to_record(&interner)), db.lookup(ip));
        }
        // Distinct symbols interned: one region + one city.
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn roundtrip() {
        let db = sample_db();
        let text = write(&db);
        let back = parse("csv-test", &text).unwrap();
        assert_eq!(back.len(), db.len());
        for ip in ["6.0.0.9", "31.0.0.77", "9.9.9.9"] {
            let ip: Ipv4Addr = ip.parse().unwrap();
            assert_eq!(back.lookup(ip), db.lookup(ip), "{ip}");
        }
    }

    #[test]
    fn row_shape() {
        let text = write(&sample_db());
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("\"100663296\",\"100663551\",\"US\",\"United States\""));
        assert!(first.contains("\"Springfield\""));
        // Absent region/city/coords render as blank cells, not "-".
        let second = text.lines().nth(1).unwrap();
        assert!(second.contains("\"DE\",\"Germany\",,,,,\"0\""), "{second}");
    }

    #[test]
    fn empty_present_strings_round_trip_distinct_from_absent() {
        let mut b = InMemoryDbBuilder::new("empties");
        b.push_prefix(
            "6.0.0.0/24".parse().unwrap(),
            LocationRecord {
                country: Some("US".parse().unwrap()),
                region: Some(String::new()),
                city: Some(String::new()),
                coord: None,
                granularity: Granularity::Block24,
            },
        );
        b.push_prefix(
            "6.0.1.0/24".parse().unwrap(),
            LocationRecord {
                country: Some("US".parse().unwrap()),
                region: None,
                city: None,
                coord: None,
                granularity: Granularity::Block24,
            },
        );
        let db = b.build().unwrap();
        let text = write(&db);
        // Present-but-empty renders quoted, absent renders blank.
        let first = text.lines().next().unwrap();
        assert!(first.contains("\"\",\"\",,,"), "{first}");
        let back = parse("empties", &text).unwrap();
        let some_empty = back.lookup("6.0.0.9".parse().unwrap()).unwrap();
        assert_eq!(some_empty.region.as_deref(), Some(""));
        assert_eq!(some_empty.city.as_deref(), Some(""));
        let absent = back.lookup("6.0.1.9".parse().unwrap()).unwrap();
        assert_eq!(absent.region, None);
        assert_eq!(absent.city, None);
        // The two records stay distinguishable after the round trip —
        // this is the field the old codec silently collapsed.
        assert_ne!(some_empty, absent);
    }

    #[test]
    fn legacy_dash_and_blank_cells_both_parse_as_absent() {
        let legacy = "\"0\",\"255\",\"-\",\"-\",\"-\",\"-\",\"\",\"\",\"1\"\n";
        let modern = "\"256\",\"511\",,,,,,,\"1\"\n";
        let db = parse("legacy", &format!("{legacy}{modern}")).unwrap();
        for ip in ["0.0.0.9", "0.0.1.9"] {
            let rec = db.lookup(ip.parse().unwrap()).unwrap();
            assert_eq!(rec.country, None, "{ip}");
            assert_eq!(rec.region, None, "{ip}");
            assert_eq!(rec.city, None, "{ip}");
            assert_eq!(rec.coord, None, "{ip}");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("x", "not,csv,at,all\n").is_err());
        assert!(parse("x", "\"1\",\"2\"\n").is_err()); // too few columns
        let bad_country = "\"0\",\"255\",\"USA\",\"-\",\"-\",\"-\",\"\",\"\",\"1\"\n";
        assert!(matches!(
            parse("x", bad_country),
            Err(CsvError::BadField {
                what: "country",
                ..
            })
        ));
        let bad_lat = "\"0\",\"255\",\"US\",\"-\",\"-\",\"C\",\"999\",\"0\",\"1\"\n";
        assert!(matches!(
            parse("x", bad_lat),
            Err(CsvError::BadField {
                what: "coordinate range",
                ..
            })
        ));
        let bad_gran = "\"0\",\"255\",\"US\",\"-\",\"-\",\"-\",\"\",\"\",\"7\"\n";
        assert!(matches!(
            parse("x", bad_gran),
            Err(CsvError::BadField {
                what: "granularity",
                ..
            })
        ));
    }

    #[test]
    fn parse_rejects_overlaps() {
        let text = "\"0\",\"255\",\"US\",\"-\",\"-\",\"-\",\"\",\"\",\"1\"\n\
                    \"128\",\"300\",\"US\",\"-\",\"-\",\"-\",\"\",\"\",\"1\"\n";
        assert!(matches!(parse("x", text), Err(CsvError::Overlap(_))));
    }

    #[test]
    fn empty_input_is_empty_db() {
        let db = parse("x", "").unwrap();
        assert!(db.is_empty());
        let db = parse("x", "\n  \n").unwrap();
        assert!(db.is_empty());
    }
}

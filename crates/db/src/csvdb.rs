//! IP2Location-style CSV database format.
//!
//! Row shape (quoted, comma-separated), matching the DB11 column layout:
//!
//! ```text
//! "100663296","100663551","US","United States","USA Region 1","Springfield","39.800000","-89.600000"
//! ```
//!
//! First two columns are the inclusive `u32` range; empty country renders
//! as `"-"`; rows without city-level data carry `"-"` city and empty
//! coordinates. A trailing granularity column (non-standard, but explicit
//! beats sneaking state into coordinates) preserves the block-level flag.

use crate::inmem::{InMemoryDb, InMemoryDbBuilder};
use crate::record::{Granularity, LocationRecord};
use routergeo_geo::country::lookup;
use routergeo_geo::Coordinate;
use std::fmt;
use std::net::Ipv4Addr;

/// Errors parsing a CSV database.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// A line had the wrong number of columns.
    BadColumnCount {
        /// 1-based line number.
        line: usize,
        /// Number of columns found.
        got: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Field description.
        what: &'static str,
    },
    /// Ranges overlap after parsing.
    Overlap(String),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::BadColumnCount { line, got } => {
                write!(f, "line {line}: expected 9 columns, got {got}")
            }
            CsvError::BadField { line, what } => write!(f, "line {line}: bad {what}"),
            CsvError::Overlap(s) => write!(f, "overlapping ranges: {s}"),
        }
    }
}

impl std::error::Error for CsvError {}

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('"', ""))
}

/// Render one row.
fn format_row(start: Ipv4Addr, end: Ipv4Addr, rec: &LocationRecord) -> String {
    let country = rec.country.map(|c| c.as_str().to_string());
    let country_name = rec
        .country
        .and_then(lookup)
        .map(|i| i.name.to_string())
        .unwrap_or_else(|| "-".to_string());
    let (lat, lon) = match rec.coord {
        Some(c) => (format!("{:.6}", c.lat()), format!("{:.6}", c.lon())),
        None => (String::new(), String::new()),
    };
    [
        u32::from(start).to_string(),
        u32::from(end).to_string(),
        country.unwrap_or_else(|| "-".to_string()),
        country_name,
        rec.region.clone().unwrap_or_else(|| "-".to_string()),
        rec.city.clone().unwrap_or_else(|| "-".to_string()),
        lat,
        lon,
        rec.granularity.id().to_string(),
    ]
    .iter()
    .map(|f| quote(f))
    .collect::<Vec<_>>()
    .join(",")
}

/// Serialize a database to CSV text.
pub fn write(db: &InMemoryDb) -> String {
    let mut out = String::new();
    for (start, end, rec) in db.iter() {
        out.push_str(&format_row(start, end, rec));
        out.push('\n');
    }
    out
}

/// Split one CSV line into unquoted fields. The format never embeds commas
/// inside fields, so this stays simple — but quotes are validated.
fn split_line(line: &str, lineno: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    for raw in line.split(',') {
        let raw = raw.trim();
        let inner = raw
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or(CsvError::BadField {
                line: lineno,
                what: "quoting",
            })?;
        fields.push(inner.to_string());
    }
    Ok(fields)
}

/// Parse CSV text into a database named `name`.
pub fn parse(name: &str, text: &str) -> Result<InMemoryDb, CsvError> {
    let mut builder = InMemoryDbBuilder::new(name);
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_line(line, lineno)?;
        if fields.len() != 9 {
            return Err(CsvError::BadColumnCount {
                line: lineno,
                got: fields.len(),
            });
        }
        let start: u32 = fields[0].parse().map_err(|_| CsvError::BadField {
            line: lineno,
            what: "range start",
        })?;
        let end: u32 = fields[1].parse().map_err(|_| CsvError::BadField {
            line: lineno,
            what: "range end",
        })?;
        let country = match fields[2].as_str() {
            "-" | "" => None,
            s => Some(s.parse().map_err(|_| CsvError::BadField {
                line: lineno,
                what: "country",
            })?),
        };
        let region = match fields[4].as_str() {
            "-" | "" => None,
            s => Some(s.to_string()),
        };
        let city = match fields[5].as_str() {
            "-" | "" => None,
            s => Some(s.to_string()),
        };
        let coord = match (fields[6].as_str(), fields[7].as_str()) {
            ("", "") => None,
            (lat, lon) => {
                let lat: f64 = lat.parse().map_err(|_| CsvError::BadField {
                    line: lineno,
                    what: "latitude",
                })?;
                let lon: f64 = lon.parse().map_err(|_| CsvError::BadField {
                    line: lineno,
                    what: "longitude",
                })?;
                Some(Coordinate::new(lat, lon).map_err(|_| CsvError::BadField {
                    line: lineno,
                    what: "coordinate range",
                })?)
            }
        };
        let granularity = fields[8]
            .parse::<u8>()
            .ok()
            .and_then(Granularity::from_id)
            .ok_or(CsvError::BadField {
                line: lineno,
                what: "granularity",
            })?;
        builder.push_range(
            Ipv4Addr::from(start),
            Ipv4Addr::from(end),
            LocationRecord {
                country,
                region,
                city,
                coord,
                granularity,
            },
        );
    }
    builder
        .build()
        .map_err(|e| CsvError::Overlap(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeoDatabase;

    fn sample_db() -> InMemoryDb {
        let mut b = InMemoryDbBuilder::new("csv-test");
        b.push_prefix(
            "6.0.0.0/24".parse().unwrap(),
            LocationRecord {
                country: Some("US".parse().unwrap()),
                region: Some("USA Region 1".into()),
                city: Some("Springfield".into()),
                coord: Some(Coordinate::new(39.8, -89.6).unwrap()),
                granularity: Granularity::SubBlock,
            },
        );
        b.push_prefix(
            "31.0.0.0/24".parse().unwrap(),
            LocationRecord::country_level("DE".parse().unwrap(), Granularity::Aggregate),
        );
        b.build().unwrap()
    }

    #[test]
    fn parsed_csv_answers_the_compact_path() {
        // `parse` yields an `InMemoryDb`, so CSV-loaded databases get
        // the native allocation-free compact lookup for free.
        let db = parse("csv-test", &write(&sample_db())).unwrap();
        let mut interner = crate::LocationInterner::new();
        for ip in ["6.0.0.9", "31.0.0.77", "9.9.9.9"] {
            let ip: Ipv4Addr = ip.parse().unwrap();
            let compact = db.lookup_compact(ip, &mut interner);
            assert_eq!(compact.map(|c| c.to_record(&interner)), db.lookup(ip));
        }
        // Distinct symbols interned: one region + one city.
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn roundtrip() {
        let db = sample_db();
        let text = write(&db);
        let back = parse("csv-test", &text).unwrap();
        assert_eq!(back.len(), db.len());
        for ip in ["6.0.0.9", "31.0.0.77", "9.9.9.9"] {
            let ip: Ipv4Addr = ip.parse().unwrap();
            assert_eq!(back.lookup(ip), db.lookup(ip), "{ip}");
        }
    }

    #[test]
    fn row_shape() {
        let text = write(&sample_db());
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("\"100663296\",\"100663551\",\"US\",\"United States\""));
        assert!(first.contains("\"Springfield\""));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("x", "not,csv,at,all\n").is_err());
        assert!(parse("x", "\"1\",\"2\"\n").is_err()); // too few columns
        let bad_country = "\"0\",\"255\",\"USA\",\"-\",\"-\",\"-\",\"\",\"\",\"1\"\n";
        assert!(matches!(
            parse("x", bad_country),
            Err(CsvError::BadField {
                what: "country",
                ..
            })
        ));
        let bad_lat = "\"0\",\"255\",\"US\",\"-\",\"-\",\"C\",\"999\",\"0\",\"1\"\n";
        assert!(matches!(
            parse("x", bad_lat),
            Err(CsvError::BadField {
                what: "coordinate range",
                ..
            })
        ));
        let bad_gran = "\"0\",\"255\",\"US\",\"-\",\"-\",\"-\",\"\",\"\",\"7\"\n";
        assert!(matches!(
            parse("x", bad_gran),
            Err(CsvError::BadField {
                what: "granularity",
                ..
            })
        ));
    }

    #[test]
    fn parse_rejects_overlaps() {
        let text = "\"0\",\"255\",\"US\",\"-\",\"-\",\"-\",\"\",\"\",\"1\"\n\
                    \"128\",\"300\",\"US\",\"-\",\"-\",\"-\",\"\",\"\",\"1\"\n";
        assert!(matches!(parse("x", text), Err(CsvError::Overlap(_))));
    }

    #[test]
    fn empty_input_is_empty_db() {
        let db = parse("x", "").unwrap();
        assert!(db.is_empty());
        let db = parse("x", "\n  \n").unwrap();
        assert!(db.is_empty());
    }
}

//! Geolocation databases: engine, formats, and synthetic vendors.
//!
//! The paper treats each geolocation database as a black box mapping an IP
//! address to a location record of some resolution. This crate provides:
//!
//! * [`record`] — the record model: country / region / city / coordinates,
//!   resolution, and the granularity tag behind the paper's "block-level
//!   location" analysis (§5.2.3).
//! * [`GeoDatabase`] — the lookup trait every backend implements.
//! * [`inmem`] — an in-memory range database (the working representation).
//! * [`csvdb`] — an IP2Location-style CSV format (range rows), reader and
//!   writer.
//! * [`rgdb`] — **RGDB**, a MaxMind-style binary format: a serialized
//!   binary search trie over address bits plus a deduplicated data
//!   section, with a checksummed header; reader works directly over
//!   [`bytes::Bytes`].
//! * [`rgdb2`] — **RGDB v2 / v2.1**, the flat zero-copy revisions:
//!   fixed-width trie nodes and records plus a deduplicated string
//!   table, fully validated at open so lookups are lock-free pointer
//!   arithmetic that borrows straight from the image bytes. v2.1 adds a
//!   stride-16 root table and level-order node placement for cache
//!   locality. [`AnyReader`] dispatches on the header version so v1,
//!   v2, and v2.1 images open through one call.
//! * [`image`] — [`FileImage`], the file-backed image loader: one
//!   allocation, positioned reads, attributed I/O errors.
//! * [`diff`] — snapshot drift measurement: classify how answers change
//!   between two releases of a database (the paper's §5.2 50-day
//!   robustness argument, made testable).
//! * [`synth`] — the four synthetic vendor profiles (IP2Location-Lite,
//!   MaxMind-GeoLite, MaxMind-Paid, NetAcuity) that derive per-block
//!   records from modeled signals: shared registry data, measurement
//!   corpora, DNS hostname hints, and default-centroid fallbacks. See
//!   DESIGN.md §4 for the mechanism-to-finding mapping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
pub mod csvdb;
pub mod diff;
pub mod image;
pub mod inmem;
pub mod record;
pub mod rgdb;
pub mod rgdb2;
pub mod synth;

pub use compact::{CompactRecord, IdRemap, LocationInterner};
pub use image::FileImage;
pub use inmem::InMemoryDb;
pub use record::{Granularity, LocationRecord};
pub use rgdb2::{AnyReader, Rgdb2Reader};
pub use synth::{build_vendor, SignalWorld, VendorId, VendorProfile};

use std::net::Ipv4Addr;

/// A geolocation database: IP in, location record out.
pub trait GeoDatabase {
    /// Database display name (e.g. `MaxMind-GeoLite`).
    fn name(&self) -> &str;

    /// Look up one address. `None` means the database has no record at all
    /// for the address (no coverage even at country level).
    fn lookup(&self, ip: Ipv4Addr) -> Option<LocationRecord>;

    /// Look up one address on the compact, allocation-free path: the
    /// answer comes back by value with region/city interned into
    /// `interner`. The default implementation bridges through
    /// [`GeoDatabase::lookup`] (one transient record allocation);
    /// backends override it to answer without allocating per call.
    fn lookup_compact(
        &self,
        ip: Ipv4Addr,
        interner: &mut LocationInterner,
    ) -> Option<CompactRecord> {
        self.lookup(ip)
            .map(|rec| CompactRecord::from_record(&rec, interner))
    }

    /// Look up a batch of addresses on the compact path.
    ///
    /// The answer vector is element-for-element identical to calling
    /// [`GeoDatabase::lookup_compact`] once per address in order —
    /// including interner id assignment — so callers may batch freely
    /// without changing results. Backends override this to exploit
    /// access locality (sorted range/trie walks, per-answer memoizing);
    /// the default is the sequential loop.
    fn lookup_batch(
        &self,
        ips: &[Ipv4Addr],
        interner: &mut LocationInterner,
    ) -> Vec<Option<CompactRecord>> {
        ips.iter()
            .map(|ip| self.lookup_compact(*ip, interner))
            .collect()
    }
}

impl<T: GeoDatabase + ?Sized> GeoDatabase for &T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn lookup(&self, ip: Ipv4Addr) -> Option<LocationRecord> {
        (**self).lookup(ip)
    }

    fn lookup_compact(
        &self,
        ip: Ipv4Addr,
        interner: &mut LocationInterner,
    ) -> Option<CompactRecord> {
        (**self).lookup_compact(ip, interner)
    }

    fn lookup_batch(
        &self,
        ips: &[Ipv4Addr],
        interner: &mut LocationInterner,
    ) -> Vec<Option<CompactRecord>> {
        (**self).lookup_batch(ips, interner)
    }
}

impl<T: GeoDatabase + ?Sized> GeoDatabase for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn lookup(&self, ip: Ipv4Addr) -> Option<LocationRecord> {
        (**self).lookup(ip)
    }

    fn lookup_compact(
        &self,
        ip: Ipv4Addr,
        interner: &mut LocationInterner,
    ) -> Option<CompactRecord> {
        (**self).lookup_compact(ip, interner)
    }

    fn lookup_batch(
        &self,
        ips: &[Ipv4Addr],
        interner: &mut LocationInterner,
    ) -> Vec<Option<CompactRecord>> {
        (**self).lookup_batch(ips, interner)
    }
}

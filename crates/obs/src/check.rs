//! Replay and verify an emitted obs JSONL trace.
//!
//! `cargo xtask obs-check FILE` and the bench integration tests call
//! into this module. The parser is the same field-extraction style as
//! the `xtask` bench parser — line-oriented JSON, no JSON library —
//! and the verifier checks **structural invariants** a healthy run
//! cannot violate:
//!
//! * every line parses and has a known `type`;
//! * exactly one `summary` line, and it is the last line;
//! * span ids are unique and non-zero, parents refer to spans present
//!   in the file (or 0 = root), durations are non-negative;
//! * `spans_opened == spans_closed ==` number of span lines (an
//!   unclosed span shows up as an opened/closed mismatch);
//! * histogram bucket counts sum to the histogram's `count`;
//! * counter identities hold — totals must agree with the report
//!   denominators they feed, e.g. CDF `samples_in` = `samples_kept` +
//!   `dropped_nan`, and bulk-whois addresses must all be accounted for
//!   as found, not-found, or failed.

use std::collections::HashSet;

/// One parsed span line.
#[derive(Debug, Clone)]
pub struct SpanLine {
    /// Span id (unique, non-zero).
    pub id: u64,
    /// Parent span id, 0 for root spans.
    pub parent: u64,
    /// Span name.
    pub name: String,
    /// Duration in microseconds (parsed signed so a corrupt negative
    /// value is representable — and reportable).
    pub dur_us: i64,
}

/// One parsed counter line.
#[derive(Debug, Clone)]
pub struct CounterLine {
    /// Counter name.
    pub name: String,
    /// Total (signed for the same reason as [`SpanLine::dur_us`]).
    pub total: i64,
}

/// One parsed histogram line.
#[derive(Debug, Clone)]
pub struct HistogramLine {
    /// Histogram name.
    pub name: String,
    /// Claimed number of recorded values.
    pub count: i64,
    /// `(bucket, count)` pairs.
    pub buckets: Vec<(i64, i64)>,
}

/// The summary line.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Schema tag.
    pub schema: String,
    /// Spans opened during the run.
    pub spans_opened: i64,
    /// Spans closed during the run.
    pub spans_closed: i64,
}

/// A parsed trace file.
#[derive(Debug, Default)]
pub struct TraceReport {
    /// Span lines in file order.
    pub spans: Vec<SpanLine>,
    /// Counter lines in file order.
    pub counters: Vec<CounterLine>,
    /// Histogram lines in file order.
    pub histograms: Vec<HistogramLine>,
    /// The summary line, if present.
    pub summary: Option<Summary>,
    /// 1-based line number of the summary.
    summary_line: usize,
    /// Total number of non-empty lines.
    lines: usize,
}

impl TraceReport {
    /// Total of a counter by name, `None` when absent.
    pub fn counter(&self, name: &str) -> Option<i64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.total)
    }

    /// Distinct span names.
    pub fn span_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.spans.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        names
    }
}

/// Parse a trace file. Fails on the first malformed line; structural
/// problems in a well-formed file are [`verify`]'s job.
pub fn parse(text: &str) -> Result<TraceReport, String> {
    let mut report = TraceReport::default();
    for (ix, line) in text.lines().enumerate() {
        let lineno = ix + 1;
        if line.trim().is_empty() {
            continue;
        }
        report.lines += 1;
        let err = |what: &str| format!("line {lineno}: {what}");
        match field_str(line, "type").as_deref() {
            Some("span") => report.spans.push(SpanLine {
                id: field_i64(line, "id").ok_or_else(|| err("span without id"))? as u64,
                parent: field_i64(line, "parent").ok_or_else(|| err("span without parent"))? as u64,
                name: field_str(line, "name").ok_or_else(|| err("span without name"))?,
                dur_us: field_i64(line, "dur_us").ok_or_else(|| err("span without dur_us"))?,
            }),
            Some("counter") => report.counters.push(CounterLine {
                name: field_str(line, "name").ok_or_else(|| err("counter without name"))?,
                total: field_i64(line, "total").ok_or_else(|| err("counter without total"))?,
            }),
            Some("histogram") => {
                let spec =
                    field_str(line, "buckets").ok_or_else(|| err("histogram without buckets"))?;
                let mut buckets = Vec::new();
                for part in spec.split_whitespace() {
                    let (b, c) = part
                        .split_once(':')
                        .ok_or_else(|| err("malformed bucket"))?;
                    let b: i64 = b.parse().map_err(|_| err("malformed bucket index"))?;
                    let c: i64 = c.parse().map_err(|_| err("malformed bucket count"))?;
                    buckets.push((b, c));
                }
                report.histograms.push(HistogramLine {
                    name: field_str(line, "name").ok_or_else(|| err("histogram without name"))?,
                    count: field_i64(line, "count")
                        .ok_or_else(|| err("histogram without count"))?,
                    buckets,
                });
            }
            Some("summary") => {
                if report.summary.is_some() {
                    return Err(err("second summary line"));
                }
                report.summary = Some(Summary {
                    schema: field_str(line, "schema").unwrap_or_default(),
                    spans_opened: field_i64(line, "spans_opened")
                        .ok_or_else(|| err("summary without spans_opened"))?,
                    spans_closed: field_i64(line, "spans_closed")
                        .ok_or_else(|| err("summary without spans_closed"))?,
                });
                report.summary_line = report.lines;
            }
            Some(other) => return Err(err(&format!("unknown line type `{other}`"))),
            None => return Err(err("line without a type field")),
        }
    }
    Ok(report)
}

/// Counter identities a healthy run maintains: the first name must
/// equal the sum of the rest, whenever the first is present.
const IDENTITIES: &[(&str, &[&str])] = &[
    ("cdf.samples_in", &["cdf.samples_kept", "cdf.dropped_nan"]),
    (
        "cymru.addrs_requested",
        &[
            "cymru.addrs_found",
            "cymru.addrs_not_found",
            "cymru.addrs_failed",
        ],
    ),
    (
        "cymru.chunks",
        &[
            "cymru.chunks_ok",
            "cymru.chunks_failed",
            "cymru.chunks_skipped",
        ],
    ),
    ("pool.shards_planned", &["pool.shards_run"]),
    ("resolve.lookups", &["resolve.hits", "resolve.misses"]),
    (
        "serve.requests",
        &["serve.served", "serve.shed", "serve.malformed"],
    ),
    (
        "serve.lookups",
        &["serve.hits", "serve.misses", "serve.lookup_errors"],
    ),
];

/// Verify structural invariants; returns human-readable violations
/// (empty = trace is sound).
pub fn verify(report: &TraceReport) -> Vec<String> {
    let mut out = Vec::new();

    match &report.summary {
        None => out.push("no summary line".to_string()),
        Some(s) => {
            if report.summary_line != report.lines {
                out.push("summary is not the last line".to_string());
            }
            if s.schema != crate::SCHEMA {
                out.push(format!("unknown schema `{}`", s.schema));
            }
            if s.spans_opened != s.spans_closed {
                out.push(format!(
                    "unclosed spans: {} opened, {} closed",
                    s.spans_opened, s.spans_closed
                ));
            }
            if s.spans_closed != report.spans.len() as i64 {
                out.push(format!(
                    "summary claims {} closed spans but the file has {}",
                    s.spans_closed,
                    report.spans.len()
                ));
            }
        }
    }

    let mut ids = HashSet::new();
    for s in &report.spans {
        if s.id == 0 {
            out.push(format!("span `{}` has id 0", s.name));
        }
        if !ids.insert(s.id) {
            out.push(format!("duplicate span id {}", s.id));
        }
        if s.dur_us < 0 {
            out.push(format!(
                "span `{}` has negative duration {}",
                s.name, s.dur_us
            ));
        }
    }
    for s in &report.spans {
        if s.parent != 0 && !ids.contains(&s.parent) {
            out.push(format!(
                "span `{}` (id {}) has unknown parent {}",
                s.name, s.id, s.parent
            ));
        }
    }

    let mut counter_names = HashSet::new();
    for c in &report.counters {
        if !counter_names.insert(c.name.as_str()) {
            out.push(format!("duplicate counter `{}`", c.name));
        }
        if c.total < 0 {
            out.push(format!("counter `{}` is negative: {}", c.name, c.total));
        }
    }

    for h in &report.histograms {
        let sum: i64 = h.buckets.iter().map(|(_, c)| c).sum();
        if sum != h.count {
            out.push(format!(
                "histogram `{}` buckets sum to {} but count is {}",
                h.name, sum, h.count
            ));
        }
    }

    for (total_name, parts) in IDENTITIES {
        let Some(total) = report.counter(total_name) else {
            continue;
        };
        let sum: i64 = parts.iter().filter_map(|p| report.counter(p)).sum();
        if total != sum {
            out.push(format!(
                "counter identity broken: {total_name}={total} but {}={sum}",
                parts.join("+"),
            ));
        }
    }

    out
}

/// Extract an unquoted numeric field value (`"key":-123`).
fn field_i64(line: &str, key: &str) -> Option<i64> {
    let rest = after_key(line, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract and unescape a quoted string field value (`"key":"…"`).
fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = after_key(line, key)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn after_key<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)?;
    Some(&line[at + needle.len()..])
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        "{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"stage.world\",\"start_us\":0,\"dur_us\":10,\"attrs\":\"\"}\n",
        "{\"type\":\"span\",\"id\":2,\"parent\":1,\"name\":\"pool.shard\",\"start_us\":1,\"dur_us\":4,\"attrs\":\"shard=0\"}\n",
        "{\"type\":\"counter\",\"name\":\"cdf.samples_in\",\"total\":10}\n",
        "{\"type\":\"counter\",\"name\":\"cdf.samples_kept\",\"total\":9}\n",
        "{\"type\":\"counter\",\"name\":\"cdf.dropped_nan\",\"total\":1}\n",
        "{\"type\":\"counter\",\"name\":\"resolve.lookups\",\"total\":20}\n",
        "{\"type\":\"counter\",\"name\":\"resolve.hits\",\"total\":15}\n",
        "{\"type\":\"counter\",\"name\":\"resolve.misses\",\"total\":5}\n",
        "{\"type\":\"histogram\",\"name\":\"h\",\"count\":3,\"buckets\":\"0:1 2:2\"}\n",
        "{\"type\":\"summary\",\"schema\":\"routergeo-obs-v1\",\"spans_opened\":2,\"spans_closed\":2,\"counters\":6,\"histograms\":1}\n",
    );

    #[test]
    fn good_trace_verifies() {
        let report = parse(GOOD).expect("parses");
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.counter("cdf.samples_in"), Some(10));
        assert_eq!(report.span_names(), vec!["pool.shard", "stage.world"]);
        assert!(verify(&report).is_empty());
    }

    #[test]
    fn unclosed_span_detected() {
        let text = GOOD.replace("\"spans_opened\":2", "\"spans_opened\":3");
        let v = verify(&parse(&text).expect("parses"));
        assert!(v.iter().any(|m| m.contains("unclosed spans")), "{v:?}");
    }

    #[test]
    fn negative_duration_detected() {
        let text = GOOD.replace("\"dur_us\":4", "\"dur_us\":-4");
        let v = verify(&parse(&text).expect("parses"));
        assert!(v.iter().any(|m| m.contains("negative duration")), "{v:?}");
    }

    #[test]
    fn unknown_parent_detected() {
        let text = GOOD.replace("\"parent\":1", "\"parent\":99");
        let v = verify(&parse(&text).expect("parses"));
        assert!(v.iter().any(|m| m.contains("unknown parent")), "{v:?}");
    }

    #[test]
    fn broken_cdf_identity_detected() {
        let text = GOOD.replace("\"total\":9", "\"total\":8");
        let v = verify(&parse(&text).expect("parses"));
        assert!(v.iter().any(|m| m.contains("counter identity")), "{v:?}");
    }

    #[test]
    fn histogram_mismatch_detected() {
        let text = GOOD.replace("\"count\":3", "\"count\":4");
        let v = verify(&parse(&text).expect("parses"));
        assert!(v.iter().any(|m| m.contains("buckets sum")), "{v:?}");
    }

    #[test]
    fn broken_resolve_identity_detected() {
        let text = GOOD.replace(
            "\"name\":\"resolve.hits\",\"total\":15",
            "\"name\":\"resolve.hits\",\"total\":14",
        );
        let v = verify(&parse(&text).expect("parses"));
        assert!(
            v.iter()
                .any(|m| m.contains("counter identity") && m.contains("resolve.lookups")),
            "{v:?}"
        );
    }

    const SERVE: &str = concat!(
        "{\"type\":\"counter\",\"name\":\"serve.requests\",\"total\":100}\n",
        "{\"type\":\"counter\",\"name\":\"serve.served\",\"total\":80}\n",
        "{\"type\":\"counter\",\"name\":\"serve.shed\",\"total\":12}\n",
        "{\"type\":\"counter\",\"name\":\"serve.malformed\",\"total\":8}\n",
        "{\"type\":\"counter\",\"name\":\"serve.lookups\",\"total\":70}\n",
        "{\"type\":\"counter\",\"name\":\"serve.hits\",\"total\":50}\n",
        "{\"type\":\"counter\",\"name\":\"serve.misses\",\"total\":19}\n",
        "{\"type\":\"counter\",\"name\":\"serve.lookup_errors\",\"total\":1}\n",
        "{\"type\":\"summary\",\"schema\":\"routergeo-obs-v1\",\"spans_opened\":0,\"spans_closed\":0,\"counters\":8,\"histograms\":0}\n",
    );

    #[test]
    fn serve_identities_verify_when_conserved() {
        let v = verify(&parse(SERVE).expect("parses"));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn broken_serve_request_identity_detected() {
        // Drop a shed: requests != served + shed + malformed.
        let text = SERVE.replace(
            "\"name\":\"serve.shed\",\"total\":12",
            "\"name\":\"serve.shed\",\"total\":11",
        );
        let v = verify(&parse(&text).expect("parses"));
        assert!(
            v.iter()
                .any(|m| m.contains("counter identity") && m.contains("serve.requests")),
            "{v:?}"
        );
    }

    #[test]
    fn broken_serve_lookup_identity_detected() {
        // A hit that never entered serve.lookups.
        let text = SERVE.replace(
            "\"name\":\"serve.hits\",\"total\":50",
            "\"name\":\"serve.hits\",\"total\":51",
        );
        let v = verify(&parse(&text).expect("parses"));
        assert!(
            v.iter()
                .any(|m| m.contains("counter identity") && m.contains("serve.lookups")),
            "{v:?}"
        );
    }

    #[test]
    fn summary_must_be_last() {
        let mut lines: Vec<&str> = GOOD.lines().collect();
        let last = lines.len() - 1;
        lines.swap(last - 1, last);
        let text = lines.join("\n");
        let v = verify(&parse(&text).expect("parses"));
        assert!(v.iter().any(|m| m.contains("not the last line")), "{v:?}");
    }

    #[test]
    fn missing_summary_detected() {
        let text: String = GOOD
            .lines()
            .filter(|l| !l.contains("\"type\":\"summary\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let v = verify(&parse(&text).expect("parses"));
        assert!(v.iter().any(|m| m.contains("no summary")), "{v:?}");
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse("{\"type\":\"mystery\"}").is_err());
        assert!(parse("{\"no\":\"type\"}").is_err());
        assert!(parse("{\"type\":\"span\",\"id\":1}").is_err());
        assert!(
            parse("{\"type\":\"histogram\",\"name\":\"h\",\"count\":1,\"buckets\":\"zz\"}")
                .is_err()
        );
    }

    #[test]
    fn duplicate_ids_and_counters_detected() {
        let text = GOOD
            .replace("\"id\":2,\"parent\":1", "\"id\":1,\"parent\":0")
            .replace("cdf.samples_kept", "cdf.samples_in");
        let v = verify(&parse(&text).expect("parses"));
        assert!(v.iter().any(|m| m.contains("duplicate span id")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("duplicate counter")), "{v:?}");
    }

    #[test]
    fn string_unescaping_roundtrips() {
        let line = "{\"type\":\"counter\",\"name\":\"a\\\"b\\\\c\\u0041\",\"total\":1}";
        let report = parse(line).expect("parses");
        assert_eq!(report.counters[0].name, "a\"b\\cA");
    }
}

//! `routergeo-obs` — dependency-free structured tracing and metrics.
//!
//! The evaluation pipeline is a long chain of deterministic stages; when
//! a run is slow or a figure denominator looks off, the question is
//! always "where did the time go and what was dropped". This crate
//! answers it without a profiler and without external dependencies,
//! mirroring how `routergeo-pool` stays std-only:
//!
//! * **Spans** — [`span!`] opens a guard that records wall-clock
//!   start/stop, its parent span, and key-value attributes; one event is
//!   emitted per span *close*.
//! * **Counters / histograms** — [`counter`] and [`histogram`] hand out
//!   lock-sharded handles. Increments land in per-thread shards (no
//!   contention on hot paths) and are **merged in registration order**,
//!   the same shard-order-merge discipline as the pool: because every
//!   metric is registered on the orchestrating thread and only counts
//!   deterministic quantities (items, drops, retries — never wall
//!   time), the rendered metrics section is byte-identical at any
//!   thread count.
//! * **JSONL sink** — [`write_jsonl`] emits one line-oriented JSON
//!   object per span plus a final metrics snapshot and summary, in the
//!   same no-JSON-library format as `BENCH_pipeline.json`, so the
//!   std-only `xtask` parser can replay it.
//! * **Verifier** — [`check`] replays an emitted file and reports
//!   structural invariant violations (unclosed spans, negative
//!   durations, counter identities that disagree); `cargo xtask
//!   obs-check FILE` is a thin wrapper around it.
//!
//! Spans are recorded only while the sink is [`enable`]d (`repro --obs
//! FILE` / `ROUTERGEO_OBS`); counters always accumulate — they are a
//! handful of atomics and their totals feed report cross-checks.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

pub mod check;

/// Number of lock/atomic shards. A small power of two: enough that the
/// pool's worker threads rarely collide, small enough that merging is
/// free.
const SHARDS: usize = 16;

/// Number of power-of-two histogram buckets (`u64` value range).
const BUCKETS: usize = 65;

/// Schema tag emitted in the summary line.
pub const SCHEMA: &str = "routergeo-obs-v1";

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned shard only means another thread panicked mid-push;
    // the data is a Vec of finished events and stays usable.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Stable per-thread shard index in `0..SHARDS`.
fn shard_idx() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    IDX.with(|c| {
        let mut v = c.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            c.set(v);
        }
        v
    })
}

thread_local! {
    /// Stack of open span ids on this thread (innermost last).
    static PARENTS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// One recorded span-close event.
#[derive(Debug, Clone)]
struct SpanEvent {
    id: u64,
    parent: u64,
    name: String,
    start_us: u64,
    dur_us: u64,
    attrs: Vec<(&'static str, String)>,
}

/// Sharded counter cells; the total is the sum over shards, which is
/// deterministic because addition commutes and every increment is an
/// item count, never a measurement.
struct CounterCore {
    cells: [AtomicU64; SHARDS],
}

impl CounterCore {
    fn new() -> Self {
        CounterCore {
            cells: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn total(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// Sharded log2-bucketed histogram (value `v` lands in bucket
/// `bit_width(v)`, so bucket 0 holds zeros and bucket `b` holds
/// `[2^(b-1), 2^b)`).
struct HistogramCore {
    cells: Vec<AtomicU64>, // SHARDS * BUCKETS, shard-major
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            cells: (0..SHARDS * BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    fn bucket_totals(&self) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        for b in 0..BUCKETS {
            let total: u64 = (0..SHARDS)
                .map(|s| self.cells[s * BUCKETS + b].load(Ordering::Relaxed))
                .sum();
            if total > 0 {
                out.push((b, total));
            }
        }
        out
    }
}

/// Handle to a registered counter. Cloning is cheap; [`Counter::add`]
/// touches one atomic in the caller's shard.
#[derive(Clone)]
pub struct Counter {
    core: Arc<CounterCore>,
}

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.core.cells[shard_idx()].fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total across shards.
    pub fn total(&self) -> u64 {
        self.core.total()
    }
}

/// Handle to a registered histogram of `u64` values in log2 buckets.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Record one value.
    pub fn record(&self, v: u64) {
        let b = HistogramCore::bucket_of(v);
        self.core.cells[shard_idx() * BUCKETS + b].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.core
            .cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

enum Metric {
    Counter(Arc<CounterCore>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Default)]
struct Registry {
    /// Registration order — the merge/render order. All registration
    /// happens on the orchestrating thread (stage entry, before any
    /// parallel fan-out), so this order is identical at every thread
    /// count.
    order: Vec<(String, Metric)>,
    index: HashMap<String, usize>,
}

/// One tracing/metrics domain. The process-wide instance behind the
/// free functions is [`global`]; tests build isolated instances.
pub struct Obs {
    enabled: AtomicBool,
    epoch: Instant,
    next_span: AtomicU64,
    spans_opened: AtomicU64,
    spans_closed: AtomicU64,
    span_shards: Vec<Mutex<Vec<SpanEvent>>>,
    registry: Mutex<Registry>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// A fresh, disabled instance with an empty registry.
    pub fn new() -> Self {
        Obs {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
            spans_opened: AtomicU64::new(0),
            spans_closed: AtomicU64::new(0),
            span_shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            registry: Mutex::new(Registry::default()),
        }
    }

    /// Whether span recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn span recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Open a span; the returned guard records a close event when
    /// dropped. The parent is the innermost open span on this thread.
    pub fn span(&'static self, name: &str, attrs: Vec<(&'static str, String)>) -> SpanGuard {
        let parent = PARENTS.with(|s| s.borrow().last().copied().unwrap_or(0));
        self.span_under(parent, name, attrs)
    }

    /// Open a span under an explicit parent id — for work handed to
    /// another thread (e.g. pool shards), where the thread-local parent
    /// stack of the spawning thread is out of reach.
    pub fn span_under(
        &'static self,
        parent: u64,
        name: &str,
        attrs: Vec<(&'static str, String)>,
    ) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard::disabled();
        }
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        self.spans_opened.fetch_add(1, Ordering::Relaxed);
        PARENTS.with(|s| s.borrow_mut().push(id));
        SpanGuard {
            obs: Some(self),
            id,
            parent,
            name: name.to_string(),
            start: Instant::now(),
            start_us: us_u64(self.epoch.elapsed().as_micros()),
            attrs,
        }
    }

    /// Id of the innermost open span on this thread (0 = root).
    pub fn current_span(&self) -> u64 {
        PARENTS.with(|s| s.borrow().last().copied().unwrap_or(0))
    }

    /// Look up or register a counter. Looking up an existing name of a
    /// different metric kind yields a detached handle that renders
    /// nowhere (the alternative is a panic in the middle of a run).
    pub fn counter(&self, name: &str) -> Counter {
        let mut reg = lock(&self.registry);
        if let Some(&i) = reg.index.get(name) {
            if let Metric::Counter(core) = &reg.order[i].1 {
                return Counter { core: core.clone() };
            }
            return Counter {
                core: Arc::new(CounterCore::new()),
            };
        }
        let core = Arc::new(CounterCore::new());
        let i = reg.order.len();
        reg.order
            .push((name.to_string(), Metric::Counter(core.clone())));
        reg.index.insert(name.to_string(), i);
        Counter { core }
    }

    /// Look up or register a histogram; same kind-mismatch contract as
    /// [`Obs::counter`].
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut reg = lock(&self.registry);
        if let Some(&i) = reg.index.get(name) {
            if let Metric::Histogram(core) = &reg.order[i].1 {
                return Histogram { core: core.clone() };
            }
            return Histogram {
                core: Arc::new(HistogramCore::new()),
            };
        }
        let core = Arc::new(HistogramCore::new());
        let i = reg.order.len();
        reg.order
            .push((name.to_string(), Metric::Histogram(core.clone())));
        reg.index.insert(name.to_string(), i);
        Histogram { core }
    }

    /// Total of a counter by name, 0 when unregistered. For report
    /// cross-checks and tests.
    pub fn counter_total(&self, name: &str) -> u64 {
        let reg = lock(&self.registry);
        match reg.index.get(name).map(|&i| &reg.order[i].1) {
            Some(Metric::Counter(core)) => core.total(),
            _ => 0,
        }
    }

    /// Render the trace as JSONL: span events (by id), then the metrics
    /// snapshot in registration order, then one summary line. The
    /// metrics section is byte-identical at any thread count; span
    /// lines carry wall-clock measurements and are not.
    pub fn render_jsonl(&self) -> String {
        let mut spans: Vec<SpanEvent> = Vec::new();
        for shard in &self.span_shards {
            spans.extend(lock(shard).iter().cloned());
        }
        spans.sort_by_key(|e| e.id);

        let mut out = String::new();
        for e in &spans {
            let mut attrs = String::new();
            for (i, (k, v)) in e.attrs.iter().enumerate() {
                if i > 0 {
                    attrs.push(' ');
                }
                let _ = write!(attrs, "{k}={v}");
            }
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_us\":{},\"dur_us\":{},\"attrs\":\"{}\"}}",
                e.id,
                e.parent,
                escape(&e.name),
                e.start_us,
                e.dur_us,
                escape(&attrs),
            );
        }

        let reg = lock(&self.registry);
        let mut counters = 0usize;
        let mut histograms = 0usize;
        for (name, metric) in &reg.order {
            match metric {
                Metric::Counter(core) => {
                    counters += 1;
                    let _ = writeln!(
                        out,
                        "{{\"type\":\"counter\",\"name\":\"{}\",\"total\":{}}}",
                        escape(name),
                        core.total()
                    );
                }
                Metric::Histogram(core) => {
                    histograms += 1;
                    let buckets = core.bucket_totals();
                    let count: u64 = buckets.iter().map(|(_, c)| c).sum();
                    let mut spec = String::new();
                    for (i, (b, c)) in buckets.iter().enumerate() {
                        if i > 0 {
                            spec.push(' ');
                        }
                        let _ = write!(spec, "{b}:{c}");
                    }
                    let _ = writeln!(
                        out,
                        "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"buckets\":\"{}\"}}",
                        escape(name),
                        count,
                        spec
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "{{\"type\":\"summary\",\"schema\":\"{}\",\"spans_opened\":{},\"spans_closed\":{},\"counters\":{},\"histograms\":{}}}",
            SCHEMA,
            self.spans_opened.load(Ordering::Relaxed),
            self.spans_closed.load(Ordering::Relaxed),
            counters,
            histograms,
        );
        out
    }

    /// Render only the metrics + summary section (the deterministic
    /// part) — what the thread-count determinism test compares.
    pub fn render_metrics(&self) -> String {
        self.render_jsonl()
            .lines()
            .filter(|l| !l.starts_with("{\"type\":\"span\""))
            .fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            })
    }

    fn record_close(&self, event: SpanEvent) {
        self.spans_closed.fetch_add(1, Ordering::Relaxed);
        lock(&self.span_shards[shard_idx()]).push(event);
    }
}

/// Guard for an open span; dropping it records the close event.
/// Obtained via [`span!`], [`span`], or [`span_under`].
pub struct SpanGuard {
    obs: Option<&'static Obs>,
    id: u64,
    parent: u64,
    name: String,
    start: Instant,
    start_us: u64,
    attrs: Vec<(&'static str, String)>,
}

impl SpanGuard {
    /// A no-op guard (recording disabled).
    pub fn disabled() -> Self {
        SpanGuard {
            obs: None,
            id: 0,
            parent: 0,
            name: String::new(),
            start: Instant::now(),
            start_us: 0,
            attrs: Vec::new(),
        }
    }

    /// The span id (0 when disabled) — pass to [`span_under`] for work
    /// that crosses threads.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attach an attribute after opening (e.g. a result count).
    pub fn attr(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if self.obs.is_some() {
            self.attrs.push((key, value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(obs) = self.obs else {
            return;
        };
        PARENTS.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        obs.record_close(SpanEvent {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            dur_us: us_u64(self.start.elapsed().as_micros()),
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

fn us_u64(us: u128) -> u64 {
    u64::try_from(us).unwrap_or(u64::MAX)
}

/// Monotonic stopwatch for queue-wait style measurements that feed span
/// attributes. Lives here so instrumented crates never need their own
/// `Instant::now()` (lint rule RG008 keeps ad-hoc timing out of them).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

/// Start a stopwatch.
pub fn stopwatch() -> Stopwatch {
    Stopwatch {
        start: Instant::now(),
    }
}

impl Stopwatch {
    /// Microseconds elapsed since the stopwatch started.
    pub fn elapsed_us(&self) -> u64 {
        us_u64(self.start.elapsed().as_micros())
    }
}

/// Escape a string for a JSON double-quoted literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The process-wide instance used by the free functions and [`span!`].
pub fn global() -> &'static Obs {
    static GLOBAL: OnceLock<Obs> = OnceLock::new();
    GLOBAL.get_or_init(Obs::new)
}

/// Whether the global sink records spans.
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Enable span recording on the global sink.
pub fn enable() {
    global().enable();
}

/// Open a span on the global sink (see [`Obs::span`]).
pub fn span(name: &str, attrs: Vec<(&'static str, String)>) -> SpanGuard {
    global().span(name, attrs)
}

/// Open a span under an explicit parent (see [`Obs::span_under`]).
pub fn span_under(parent: u64, name: &str, attrs: Vec<(&'static str, String)>) -> SpanGuard {
    global().span_under(parent, name, attrs)
}

/// Innermost open span id on this thread (global sink).
pub fn current_span() -> u64 {
    global().current_span()
}

/// Look up or register a global counter.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Look up or register a global histogram.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// Render the global trace (see [`Obs::render_jsonl`]).
pub fn render_jsonl() -> String {
    global().render_jsonl()
}

/// Write the global trace to `path`.
pub fn write_jsonl(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, render_jsonl())
}

/// Open a span on the global sink with `key = value` attributes:
///
/// ```
/// let _g = routergeo_obs::span!("stage.demo", items = 3);
/// ```
///
/// Attribute expressions are only evaluated (and formatted) when the
/// sink is enabled, so instrumentation is free on ordinary runs.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name, Vec::new())
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::span(
                $name,
                vec![$((stringify!($k), format!("{}", $v))),+],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> &'static Obs {
        Box::leak(Box::new(Obs::new()))
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let obs = fresh();
        {
            let _g = obs.span("quiet", Vec::new());
        }
        assert_eq!(obs.spans_opened.load(Ordering::Relaxed), 0);
        assert!(!obs.render_jsonl().contains("\"type\":\"span\""));
    }

    #[test]
    fn span_nesting_records_parents() {
        let obs = fresh();
        obs.enable();
        {
            let outer = obs.span("outer", Vec::new());
            assert_eq!(obs.current_span(), outer.id());
            let inner = obs.span("inner", vec![("k", "v".to_string())]);
            assert_eq!(inner.parent, outer.id());
        }
        let text = obs.render_jsonl();
        let spans: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("\"type\":\"span\""))
            .collect();
        assert_eq!(spans.len(), 2);
        // Inner closes first but sorting by id restores open order.
        assert!(spans[0].contains("\"name\":\"outer\""));
        assert!(spans[1].contains("\"name\":\"inner\""));
        assert!(spans[1].contains("\"attrs\":\"k=v\""));
        assert_eq!(obs.current_span(), 0);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let obs = fresh();
        obs.enable();
        let parent_id;
        {
            let parent = obs.span("driver", Vec::new());
            parent_id = parent.id();
            std::thread::scope(|s| {
                s.spawn(|| {
                    let child = obs.span_under(parent_id, "worker", Vec::new());
                    assert_eq!(child.parent, parent_id);
                });
            });
        }
        let report = check::parse(&obs.render_jsonl()).expect("well-formed");
        assert!(check::verify(&report).is_empty());
    }

    #[test]
    fn counters_merge_across_threads() {
        let obs = fresh();
        let c = obs.counter("test.items");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || c.add(25));
            }
        });
        assert_eq!(obs.counter_total("test.items"), 100);
        // Same handle back on lookup.
        obs.counter("test.items").incr();
        assert_eq!(c.total(), 101);
    }

    #[test]
    fn metrics_render_in_registration_order() {
        let obs = fresh();
        obs.counter("z.last").add(1);
        obs.counter("a.first").add(2);
        obs.histogram("m.hist").record(5);
        let text = obs.render_metrics();
        let z = text.find("z.last").expect("z.last rendered");
        let a = text.find("a.first").expect("a.first rendered");
        let m = text.find("m.hist").expect("m.hist rendered");
        assert!(z < a && a < m, "registration order, not name order");
        assert!(text.ends_with("\"histograms\":1}\n"));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let obs = fresh();
        let h = obs.histogram("h");
        for v in [0, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        let text = obs.render_jsonl();
        // 0→b0, 1→b1, {2,3}→b2, 4→b3, 1024→b11.
        assert!(text.contains("\"buckets\":\"0:1 1:1 2:2 3:1 11:1\""));
    }

    #[test]
    fn kind_mismatch_yields_detached_handle() {
        let obs = fresh();
        obs.counter("dual").add(7);
        let h = obs.histogram("dual");
        h.record(3);
        assert_eq!(obs.counter_total("dual"), 7);
        assert!(!obs.render_jsonl().contains("\"type\":\"histogram\""));
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn rendered_trace_passes_check() {
        let obs = fresh();
        obs.enable();
        {
            let _g = obs.span("stage.demo", vec![("items", "3".to_string())]);
            obs.counter("cdf.samples_in").add(10);
            obs.counter("cdf.dropped_nan").add(1);
            obs.counter("cdf.samples_kept").add(9);
        }
        let report = check::parse(&obs.render_jsonl()).expect("well-formed");
        assert!(check::verify(&report).is_empty());
    }
}

//! Performance benches for the substrates: database lookup structures,
//! geographic math, the traceroute engine, and the whois protocol.
//!
//! These are engineering benchmarks (ns/op), not paper reproductions —
//! they exist so regressions in the hot paths (LPM lookup, haversine,
//! Dijkstra) are caught and so format trade-offs (RGDB vs in-memory
//! ranges) are measurable.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use routergeo_db::synth::{build_vendor, SignalWorld, VendorId, VendorProfile};
use routergeo_db::{rgdb, GeoDatabase, InMemoryDb};
use routergeo_geo::{haversine_km, Coordinate};
use routergeo_net::{Prefix, PrefixTrie};
use routergeo_trace::Topology;
use routergeo_world::{Scale, World, WorldConfig};
use std::net::Ipv4Addr;
use std::sync::OnceLock;

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| World::generate(WorldConfig::new(7, Scale::Small)))
}

fn sample_ips(world: &World, n: usize) -> Vec<Ipv4Addr> {
    world
        .interfaces
        .iter()
        .step_by((world.interfaces.len() / n).max(1))
        .map(|i| i.ip)
        .take(n)
        .collect()
}

fn vendor_db() -> &'static InMemoryDb {
    static DB: OnceLock<InMemoryDb> = OnceLock::new();
    DB.get_or_init(|| {
        let signals = SignalWorld::new(world());
        build_vendor(&signals, &VendorProfile::preset(VendorId::NetAcuity))
    })
}

fn bench_lookup_structures(c: &mut Criterion) {
    let w = world();
    let db = vendor_db();
    let ips = sample_ips(w, 1024);

    // The same content as an RGDB binary image.
    let entries: Vec<(Prefix, routergeo_db::LocationRecord)> = db
        .iter()
        .flat_map(|(start, end, rec)| {
            Prefix::cover_range(start, end)
                .into_iter()
                .map(move |p| (p, rec.clone()))
        })
        .collect();
    let image = rgdb::write(db.name(), entries.iter().map(|(p, r)| (*p, r)));
    println!(
        "RGDB image: {} entries, {} bytes ({} deduplicated records)",
        entries.len(),
        image.len(),
        rgdb::RgdbReader::open(image.clone())
            .unwrap()
            .record_count()
    );
    let reader = rgdb::RgdbReader::open(image).unwrap();

    // And as a raw prefix trie.
    let mut trie = PrefixTrie::new();
    for (p, rec) in &entries {
        trie.insert(*p, rec.clone());
    }

    let mut group = c.benchmark_group("lookup");
    group.throughput(Throughput::Elements(ips.len() as u64));
    group.bench_function("inmem_rangemap", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for ip in &ips {
                if db.lookup(black_box(*ip)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.bench_function("rgdb_binary", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for ip in &ips {
                if reader.lookup(black_box(*ip)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.bench_function("prefix_trie", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for ip in &ips {
                if trie.lookup(black_box(*ip)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();

    c.bench_function("rgdb_write_full_db", |b| {
        b.iter(|| rgdb::write(db.name(), entries.iter().map(|(p, r)| (*p, r))))
    });
}

fn bench_vendor_build(c: &mut Criterion) {
    let w = world();
    let signals = SignalWorld::new(w);
    c.bench_function("vendor_synthesis_netacuity", |b| {
        b.iter(|| build_vendor(&signals, &VendorProfile::preset(VendorId::NetAcuity)))
    });
    c.bench_function("signal_world_build", |b| b.iter(|| SignalWorld::new(w)));
}

fn bench_geo_math(c: &mut Criterion) {
    let a = Coordinate::new(48.8566, 2.3522).unwrap();
    let pts: Vec<Coordinate> = (0..1000)
        .map(|i| {
            Coordinate::new(
                -80.0 + (i as f64 * 0.16) % 160.0,
                -170.0 + (i as f64 * 0.34) % 340.0,
            )
            .unwrap()
        })
        .collect();
    let mut group = c.benchmark_group("geo");
    group.throughput(Throughput::Elements(pts.len() as u64));
    group.bench_function("haversine_1000", |b| {
        b.iter(|| {
            let mut sum = 0.0;
            for p in &pts {
                sum += haversine_km(black_box(&a), black_box(p));
            }
            sum
        })
    });
    group.finish();
}

fn bench_topology(c: &mut Criterion) {
    let w = world();
    c.bench_function("topology_build", |b| b.iter(|| Topology::build(w)));
    let topo = Topology::build(w);
    let src = w.pops[0].id;
    c.bench_function("dijkstra_single_source", |b| {
        b.iter(|| topo.shortest_paths(black_box(src)))
    });
}

fn bench_world_generation(c: &mut Criterion) {
    c.bench_function("world_generate_tiny", |b| {
        b.iter(|| World::generate(WorldConfig::tiny(3)))
    });
}

fn bench_whois_roundtrip(c: &mut Criterion) {
    use routergeo_cymru::{bulk_lookup, MappingService, WhoisServer};
    use std::sync::Arc;
    let w = world();
    let svc = Arc::new(MappingService::build(w));
    let mut srv = WhoisServer::spawn(Arc::clone(&svc)).expect("bind");
    let addr = srv.addr();
    let ips = sample_ips(w, 64);
    c.bench_function("whois_bulk_64_tcp", |b| {
        b.iter(|| bulk_lookup(addr, &ips).expect("bulk"))
    });
    c.bench_function("whois_inprocess_64", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for ip in &ips {
                if svc.lookup(*ip).is_some() {
                    found += 1;
                }
            }
            found
        })
    });
    srv.shutdown();
}

criterion_group! {
    name = performance;
    config = Criterion::default().sample_size(20);
    targets = bench_lookup_structures, bench_vendor_build, bench_geo_math,
              bench_topology, bench_world_generation, bench_whois_roundtrip
}
criterion_main!(performance);

//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each ablation sweeps one methodological knob the paper had to choose
//! and prints the sensitivity of the headline metric to it:
//!
//! * the 40 km city-range threshold (§4);
//! * the 0.5 ms RTT-proximity threshold (§2.3.2);
//! * probe QA on/off (§3.2);
//! * the vendors' reliance on registry data (DESIGN.md §4, signal model).

use criterion::{criterion_group, criterion_main, Criterion};
use routergeo_bench::Lab;
use routergeo_core::accuracy::evaluate_entries;
use routergeo_core::groundtruth::GroundTruth;
use routergeo_cymru::MappingService;
use routergeo_db::synth::{build_vendor, SignalWorld, VendorId, VendorProfile};
use routergeo_db::GeoDatabase;
use routergeo_rtt::{build_dataset, extract_candidates, ProximityConfig};
use routergeo_trace::{AtlasBuiltins, AtlasConfig, Topology};
use std::sync::OnceLock;

fn lab() -> &'static Lab {
    static LAB: OnceLock<Lab> = OnceLock::new();
    LAB.get_or_init(|| Lab::small(20_170_301))
}

/// Ablation 1: city-range threshold sweep. The paper argues for 40 km;
/// the sweep shows how sensitive "city accuracy" is to that choice.
fn ablate_city_range(c: &mut Criterion) {
    let lab = lab();
    println!("== Ablation: city-range threshold (MaxMind-Paid city accuracy) ==");
    let acc = evaluate_entries(&lab.dbs[2], &lab.gt.entries);
    for km in [10.0, 20.0, 40.0, 60.0, 100.0] {
        let frac = acc.error_cdf.fraction_leq(km);
        println!("  <= {km:>5.0} km: {:.1}%", frac * 100.0);
    }
    // Sanity: 40 km already captures almost all of the mass that 100 km
    // does — widening the "city" radius past 40 km barely changes the
    // verdicts, which is the paper's argument for the threshold.
    let at40 = acc.error_cdf.fraction_leq(40.0);
    let at100 = acc.error_cdf.fraction_leq(100.0);
    assert!(
        at40 > at100 * 0.9,
        "city-range knee moved: {at40} vs {at100}"
    );
    c.bench_function("ablate_city_range_sweep", |b| {
        b.iter(|| [10.0, 20.0, 40.0, 60.0, 100.0].map(|km| acc.error_cdf.fraction_leq(km)))
    });
}

/// Ablation 2: RTT threshold sweep — dataset size vs location quality.
fn ablate_rtt_threshold(c: &mut Criterion) {
    let lab = lab();
    let topo = Topology::build(&lab.world);
    let records = AtlasBuiltins::new(
        &lab.world,
        &topo,
        AtlasConfig {
            seed: 11,
            targets: 6,
            instances_per_target: 4,
        },
    )
    .run();
    println!("== Ablation: RTT-proximity threshold ==");
    let mut last_size = 0usize;
    for ms in [0.25, 0.5, 1.0, 2.0] {
        let config = ProximityConfig {
            threshold_ms: ms,
            ..Default::default()
        };
        let set = extract_candidates(&lab.world, &records, &config);
        // Quality: share of candidates within the implied distance bound
        // of their probes' TRUE locations (oracle check).
        let mut ok = 0usize;
        let mut total = 0usize;
        for (ip, probes) in &set.by_ip {
            let Some(router) = lab.world.router_of_ip(*ip) else {
                continue;
            };
            for (probe, _) in probes {
                total += 1;
                let p = &lab.world.probes[probe.index()];
                let bound = routergeo_geo::rtt_to_max_distance_km(ms);
                if p.true_coord.distance_km(&router.coord) <= bound {
                    ok += 1;
                }
            }
        }
        println!(
            "  {ms:>4} ms: {:>6} addrs, physical bound holds {:.2}%",
            set.len(),
            100.0 * ok as f64 / total.max(1) as f64
        );
        assert!(set.len() >= last_size, "threshold sweep not monotone");
        assert_eq!(ok, total, "physical bound violated at {ms} ms");
        last_size = set.len();
    }
    let cfg = ProximityConfig::default();
    c.bench_function("ablate_rtt_extraction", |b| {
        b.iter(|| extract_candidates(&lab.world, &records, &cfg))
    });
}

/// Ablation 3: probe QA on/off — how much bad-probe pollution QA removes.
fn ablate_probe_qa(c: &mut Criterion) {
    let lab = lab();
    let topo = Topology::build(&lab.world);
    let records = AtlasBuiltins::new(
        &lab.world,
        &topo,
        AtlasConfig {
            seed: 12,
            targets: 6,
            instances_per_target: 4,
        },
    )
    .run();
    // QA off: accept every candidate with its lowest-RTT probe location.
    let no_qa_cfg = ProximityConfig {
        centroid_radius_km: 0.0, // disables pass 1
        nearby_max_km: f64::MAX, // disables pass 2
        ..Default::default()
    };
    let (ds_off, _) = build_dataset(&lab.world, &records, &no_qa_cfg);
    let (ds_on, report) = build_dataset(&lab.world, &records, &ProximityConfig::default());
    let bad = |ds: &routergeo_rtt::RttProximityDataset| {
        ds.entries
            .iter()
            .filter(|e| {
                lab.world
                    .router_of_ip(e.ip)
                    .map(|r| e.coord.distance_km(&r.coord) > 60.0)
                    .unwrap_or(false)
            })
            .count() as f64
            / ds.len().max(1) as f64
    };
    let (bad_off, bad_on) = (bad(&ds_off), bad(&ds_on));
    println!("== Ablation: probe QA ==");
    println!(
        "  QA off: {} addrs, {:.2}% mislocated >60 km",
        ds_off.len(),
        bad_off * 100.0
    );
    println!(
        "  QA on : {} addrs, {:.2}% mislocated >60 km ({} centroid probes, {} disqualified)",
        ds_on.len(),
        bad_on * 100.0,
        report.centroid_probes.len(),
        report.disqualified_probes.len()
    );
    assert!(bad_on <= bad_off, "QA made the dataset worse");
    let default_cfg = ProximityConfig::default();
    c.bench_function("ablate_qa_full_pipeline", |b| {
        b.iter(|| build_dataset(&lab.world, &records, &default_cfg))
    });
}

/// Ablation 4: registry reliance — re-synthesize MaxMind-Paid with the
/// measurement corpus disabled (registry only) and fully available.
fn ablate_registry_weight(c: &mut Criterion) {
    let lab = lab();
    let signals = SignalWorld::new(&lab.world);
    let whois = MappingService::build(&lab.world);
    let gt = GroundTruth {
        entries: lab.gt.entries.clone(),
        overlap: lab.gt.overlap.clone(),
        degraded: lab.gt.degraded.clone(),
    };
    let _ = whois;
    println!("== Ablation: measurement corpus availability (MaxMind-Paid profile) ==");
    for (label, stub, dom, transit) in [
        ("registry-only", 0.0, 0.0, 0.0),
        ("paper-calibrated", 0.85, 0.55, 0.19),
        ("full-corpus", 1.0, 1.0, 1.0),
    ] {
        let mut profile = VendorProfile::preset(VendorId::MaxMindPaid);
        profile.meas_avail_stub = stub;
        profile.meas_avail_domestic = dom;
        profile.meas_avail_transit = transit;
        let db = build_vendor(&signals, &profile);
        let acc = evaluate_entries(&db, &gt.entries);
        println!(
            "  {label:>16}: country {:.1}%  city(40km) {:.1}% over {} city answers",
            acc.country_accuracy() * 100.0,
            acc.city_accuracy() * 100.0,
            acc.city_covered,
        );
        let _ = db.lookup(lab.world.interfaces[0].ip);
    }
    c.bench_function("ablate_vendor_resynthesis", |b| {
        b.iter(|| build_vendor(&signals, &VendorProfile::preset(VendorId::MaxMindPaid)))
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablate_city_range, ablate_rtt_threshold, ablate_probe_qa,
              ablate_registry_weight
}
criterion_main!(ablations);

//! Criterion benches for every paper artifact (E1–E12 in DESIGN.md).
//!
//! Each bench times the *analysis* stage of one table/figure over a shared
//! prebuilt lab (the pipeline build is timed separately in
//! `performance.rs`), prints the rendered table once so `cargo bench`
//! doubles as a miniature repro run, and asserts the headline qualitative
//! shape so a regression in the synthesis shows up as a bench failure.

use criterion::{criterion_group, criterion_main, Criterion};
use routergeo_bench::{experiments as exp, Lab};
use std::sync::OnceLock;

fn lab() -> &'static Lab {
    static LAB: OnceLock<Lab> = OnceLock::new();
    LAB.get_or_init(|| {
        // Small scale keeps a full `cargo bench` run in minutes while
        // exercising every pipeline stage; the repro binary covers the
        // tenth/paper scales.
        Lab::small(20_170_301)
    })
}

fn bench_table1(c: &mut Criterion) {
    let lab = lab();
    let (dns, rtt, table) = exp::table1(lab);
    println!("{}", table.render());
    assert!(
        dns.total > 0 && rtt.total > 0,
        "E1: both GT methods present"
    );
    c.bench_function("E1_table1", |b| b.iter(|| exp::table1(lab)));
}

fn bench_coverage(c: &mut Criterion) {
    let lab = lab();
    let (reports, table) = exp::ark_coverage(lab);
    println!("{}", table.render());
    // §5.1 headline: IP2Location/NetAcuity ≈ full city coverage, MaxMind
    // editions far below with paid > free.
    assert!(reports[0].city_coverage() > 0.9);
    assert!(reports[3].city_coverage() > 0.9);
    assert!(reports[1].city_coverage() < reports[2].city_coverage());
    assert!(reports[2].city_coverage() < 0.8);
    c.bench_function("E2_ark_coverage", |b| b.iter(|| exp::ark_coverage(lab)));
}

fn bench_consistency(c: &mut Criterion) {
    let lab = lab();
    let (report, tables) = exp::ark_consistency(lab);
    println!("{}", tables[0].render());
    println!("{}", tables[1].render());
    // Figure 1 headline: the MaxMind pair mostly agrees; cross-vendor
    // pairs disagree on the city for a large share of addresses.
    let mm_pair = report.pair_disagreement(1, 2).unwrap();
    for (i, j) in [(0, 1), (0, 2), (0, 3), (1, 3), (2, 3)] {
        let cross = report.pair_disagreement(i, j).unwrap();
        assert!(
            cross > mm_pair,
            "E3: cross-vendor pair ({i},{j}) {cross} not above MM pair {mm_pair}"
        );
        assert!(cross > 0.2, "E3: cross-vendor disagreement too low");
    }
    // Country level: the MaxMind pair agrees the most.
    assert!(report.country_agree[1][2] > report.country_agree[0][3]);
    c.bench_function("E3_ark_consistency", |b| {
        b.iter(|| exp::ark_consistency(lab))
    });
}

fn bench_accuracy(c: &mut Criterion) {
    let lab = lab();
    let (report, tables) = exp::gt_accuracy(lab);
    println!("{}", tables[0].render());
    // §5.2.1 headline: NetAcuity clearly best at country level; the three
    // registry-fed databases are comparable; MaxMind city coverage low.
    let neta = &report.overall[3];
    for other in &report.overall[..3] {
        assert!(neta.country_accuracy() > other.country_accuracy() + 0.02);
    }
    assert!(report.overall[1].city_coverage() < 0.6);
    assert!(report.overall[0].city_accuracy() < report.overall[3].city_accuracy());
    c.bench_function("E4_gt_accuracy_fig2", |b| b.iter(|| exp::gt_accuracy(lab)));
}

fn bench_regional(c: &mut Criterion) {
    let lab = lab();
    let (report, _) = exp::gt_accuracy(lab);
    println!("{}", exp::fig3(&report).render());
    for t in exp::fig5(&report) {
        println!("{}", t.render());
    }
    // Figure 3 headline: NetAcuity most accurate in the two big regions.
    let arin = 0;
    let ripe = 4;
    for region in [arin, ripe] {
        let neta_err = 1.0 - report.by_rir[3][region].country_accuracy();
        for db in 0..3 {
            let err = 1.0 - report.by_rir[db][region].country_accuracy();
            assert!(
                neta_err < err,
                "E5: NetAcuity not best in region {region}: {neta_err} vs db{db} {err}"
            );
        }
    }
    c.bench_function("E5_E7_regional_breakdowns", |b| {
        b.iter(|| {
            let f3 = exp::fig3(&report);
            let f5 = exp::fig5(&report);
            (f3, f5)
        })
    });
}

fn bench_countries(c: &mut Criterion) {
    let lab = lab();
    let (report, _) = exp::gt_accuracy(lab);
    let (common_wrong, table) = exp::fig4(lab, &report);
    println!("{}", table.render());
    println!("common wrong across registry-fed DBs: {common_wrong}\n");
    // Figure 4 headline: US excellent everywhere; the registry-fed
    // databases share a large pool of identical wrong answers.
    let us = report
        .by_country
        .iter()
        .find(|(cc, _, _)| cc.as_str() == "US")
        .expect("US in top countries");
    for acc in &us.2 {
        assert!(acc.country_accuracy() > 0.9, "E6: US accuracy dropped");
    }
    assert!(common_wrong > 0, "E6: no common wrong answers");
    c.bench_function("E6_fig4_countries", |b| b.iter(|| exp::fig4(lab, &report)));
}

fn bench_arin_case(c: &mut Criterion) {
    let lab = lab();
    let (cases, table) = exp::arin(lab);
    println!("{}", table.render());
    // §5.2.3 headline: a majority of non-US ARIN ground truth is pulled
    // into the US by the registry-fed databases, and the wrong city
    // answers are overwhelmingly block-level.
    let mm_paid = &cases[2];
    assert!(
        mm_paid.pull_rate() > 0.4,
        "E8: pull rate {}",
        mm_paid.pull_rate()
    );
    if mm_paid.us_city_wrong > 0 {
        let blk = mm_paid.wrong_block_level as f64 / mm_paid.us_city_wrong as f64;
        assert!(blk > 0.7, "E8: wrong answers not block-level: {blk}");
    }
    c.bench_function("E8_arin_case", |b| b.iter(|| exp::arin(lab)));
}

fn bench_method_split(c: &mut Criterion) {
    let lab = lab();
    let (report, _) = exp::gt_accuracy(lab);
    println!("{}", exp::method_split(&report).render());
    // §5.2.4 headline: the registry-fed databases do far worse on the
    // DNS-based (backbone) set than on the RTT set; NetAcuity is the only
    // database anywhere near parity.
    for db in 0..3 {
        let [dns, rtt] = &report.by_method[db];
        assert!(
            dns.city_accuracy() + 0.15 < rtt.city_accuracy(),
            "E9: db{db} lost its DNS-set deficit"
        );
    }
    let [neta_dns, neta_rtt] = &report.by_method[3];
    assert!(
        (neta_dns.city_accuracy() - neta_rtt.city_accuracy()).abs() < 0.15,
        "E9: NetAcuity not near parity: {} vs {}",
        neta_dns.city_accuracy(),
        neta_rtt.city_accuracy()
    );
    c.bench_function("E9_method_split", |b| b.iter(|| exp::method_split(&report)));
}

fn bench_validation(c: &mut Criterion) {
    let lab = lab();
    let (overlap, churn, tables) = exp::validation(lab);
    for t in &tables {
        println!("{}", t.render());
    }
    // §3.1 headline: the two GT methods agree on their overlap; churn over
    // 16 months moves ~7% of addresses.
    if overlap.common > 20 {
        assert!(overlap.frac_within_40km() > 0.9, "E10: GT methods disagree");
    }
    assert!(churn.moved_fraction() < 0.15, "E10: churn blew up");
    assert!(churn.same > churn.changed(), "E10: churn inverted");
    // §3.2 headline: QA removes few probes, not the population.
    let qa = &lab.qa;
    assert!(qa.centroid_probes.len() < qa.probes_total / 5);
    c.bench_function("E10_E11_validation", |b| b.iter(|| exp::validation(lab)));
}

fn bench_methodology(c: &mut Criterion) {
    let lab = lab();
    let (report, table) = exp::methodology(lab);
    println!("{}", table.render());
    // §4 headline: everything within 40 km >99% of the time.
    assert!(report.min_gazetteer_agreement() > 0.99);
    assert!(report.min_cross_db_agreement() > 0.99);
    c.bench_function("E12_methodology", |b| b.iter(|| exp::methodology(lab)));
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_coverage, bench_consistency, bench_accuracy,
              bench_regional, bench_countries, bench_arin_case,
              bench_method_split, bench_validation, bench_methodology
}
criterion_main!(experiments);

//! The experiment harness: everything needed to regenerate the paper's
//! tables and figures from one seeded synthetic lab.
//!
//! [`Lab`] assembles the full pipeline — world, topology, Ark campaign,
//! Atlas built-ins, ground truth, vendor databases, whois, gazetteer —
//! and [`experiments`] exposes one function per table/figure (see the
//! experiment index in `DESIGN.md`). The `repro` binary prints them; the
//! Criterion benches in `benches/` time the analysis stages and assert
//! the headline shapes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod lab;
pub mod timing;

pub use lab::{Lab, LabConfig, StageTiming};
pub use timing::PipelineTimings;

//! Lab assembly: build the whole pipeline once, reuse across experiments.

use routergeo_core::groundtruth::{GroundTruth, RirAnnotation};
use routergeo_cymru::{BulkClient, MappingService, WhoisServer};
use routergeo_db::synth::{build_vendor_with, SignalWorld, VendorProfile};
use routergeo_db::InMemoryDb;
use routergeo_dns::RuleEngine;
use routergeo_gazetteer::Gazetteer;
use routergeo_net::Prefix;
use routergeo_pool::Pool;
use routergeo_rtt::{build_dataset, ProximityConfig, QaReport, RttProximityDataset};
use routergeo_trace::{
    ArkCampaign, ArkConfig, ArkDataset, AtlasBuiltins, AtlasConfig, Topology, TracerouteRecord,
};
use routergeo_world::{Scale, World, WorldConfig};

pub use crate::timing::{time_stage, StageClock, StageTiming};

/// Lab construction knobs.
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// Master seed.
    pub seed: u64,
    /// World size preset.
    pub scale: Scale,
    /// Scale factor on the paper's per-domain DNS ground-truth targets
    /// (1.0 = the paper's counts; small worlds need less).
    pub dns_gt_scale: f64,
    /// Ark traceroute count (`None`: three passes over every /24).
    pub ark_traceroutes: Option<usize>,
    /// Ark monitor count.
    pub ark_monitors: usize,
    /// Atlas anycast services.
    pub atlas_targets: usize,
    /// Instances per service.
    pub atlas_instances: usize,
    /// RTT-proximity thresholds and QA knobs.
    pub proximity: ProximityConfig,
    /// Worker threads for the parallel stages (`None`: honour
    /// `ROUTERGEO_THREADS`, falling back to the machine's parallelism).
    /// Output is byte-identical at every setting.
    pub threads: Option<usize>,
}

impl LabConfig {
    /// Paper-shaped defaults at the given scale.
    pub fn new(seed: u64, scale: Scale) -> LabConfig {
        LabConfig {
            seed,
            scale,
            dns_gt_scale: match scale {
                Scale::Tiny => 0.02,
                Scale::Small => 0.05,
                Scale::Tenth | Scale::Paper => 1.0,
            },
            ark_traceroutes: None,
            ark_monitors: 40,
            atlas_targets: match scale {
                Scale::Tiny => 4,
                Scale::Small => 6,
                _ => 13,
            },
            atlas_instances: match scale {
                Scale::Tiny | Scale::Small => 4,
                _ => 8,
            },
            proximity: ProximityConfig::default(),
            threads: None,
        }
    }

    /// The worker pool this config resolves to.
    pub fn pool(&self) -> Pool {
        match self.threads {
            Some(n) => Pool::new(n),
            None => Pool::from_env(),
        }
    }

    /// Resolve the scale from `ROUTERGEO_SCALE`, defaulting to `Tenth`
    /// (the benchmark default; `paper` runs the full 1.6 M-interface
    /// world).
    pub fn from_env(seed: u64) -> LabConfig {
        LabConfig::new(seed, Scale::from_env(Scale::Tenth))
    }
}

/// The assembled lab.
pub struct Lab {
    /// Construction knobs used.
    pub config: LabConfig,
    /// The synthetic world (oracle).
    pub world: World,
    /// The four vendor databases in the paper's order:
    /// IP2Location-Lite, MaxMind-GeoLite, MaxMind-Paid, NetAcuity.
    pub dbs: Vec<InMemoryDb>,
    /// IP→ASN/RIR mapping (Team Cymru substitute).
    pub whois: MappingService,
    /// DRoP rule engine with the seven ground-truth domains.
    pub engine: RuleEngine,
    /// Ark-topo-router dataset (§2.1).
    pub ark: ArkDataset,
    /// RTT-proximity dataset after QA (§2.3.2, §3.2).
    pub rtt: RttProximityDataset,
    /// Independent later snapshot at a 1 ms threshold, without QA — the
    /// Giotsas et al. comparison dataset of §3.1/§3.2.
    pub rtt_1ms: RttProximityDataset,
    /// Probe-QA counters (§3.2).
    pub qa: QaReport,
    /// The raw Atlas built-in measurement records (kept for the CBG
    /// extension experiment, which reuses the probes as landmarks).
    pub atlas_records: Vec<TracerouteRecord>,
    /// Combined ground truth (§2.3.3).
    pub gt: GroundTruth,
    /// GeoNames-like gazetteer (§4).
    pub gazetteer: Gazetteer,
    /// Worker pool used for the parallel stages; experiments reuse it so
    /// one `--threads` knob governs the whole run.
    pub pool: Pool,
}

impl Lab {
    /// Build everything. The construction order mirrors the paper's
    /// pipeline; every stage is deterministic in `config` — including the
    /// thread count, which never changes output bytes.
    pub fn build(config: LabConfig) -> Lab {
        Lab::build_timed(config).0
    }

    /// [`Lab::build`] plus per-stage wall-clock timings, for
    /// `repro --timings` / `BENCH_pipeline.json`.
    pub fn build_timed(config: LabConfig) -> (Lab, Vec<StageTiming>) {
        let pool = config.pool();
        let mut stages = Vec::new();

        let world = time_stage(
            &mut stages,
            "world",
            |w: &World| w.interfaces.len(),
            || World::generate(WorldConfig::new(config.seed, config.scale)),
        );
        let topo = time_stage(
            &mut stages,
            "topology",
            |_| world.interfaces.len(),
            || Topology::build(&world),
        );

        // §2.1 Ark campaign → router interface dataset.
        let ark = time_stage(
            &mut stages,
            "ark",
            |d: &ArkDataset| d.interfaces.len(),
            || {
                ArkCampaign::new(
                    &world,
                    &topo,
                    ArkConfig {
                        seed: config.seed ^ 0xA4C,
                        monitors: config.ark_monitors,
                        traceroutes: config.ark_traceroutes,
                    },
                )
                .extract_dataset_with(&pool)
            },
        );

        // §2.3.2 Atlas built-ins → RTT-proximity ground truth.
        let atlas_clock = StageClock::start("atlas_rtt");
        let records = AtlasBuiltins::new(
            &world,
            &topo,
            AtlasConfig {
                seed: config.seed ^ 0xA71A5,
                targets: config.atlas_targets,
                instances_per_target: config.atlas_instances,
            },
        )
        .run();
        let (rtt, qa) = build_dataset(&world, &records, &config.proximity);

        // The 1ms-RTT-proximity comparison set: a *different* measurement
        // campaign (later snapshot, different flows) at a 1 ms threshold,
        // accepted without QA — as the externally-provided dataset was.
        let records_1ms = AtlasBuiltins::new(
            &world,
            &topo,
            AtlasConfig {
                seed: config.seed ^ 0x16_1A5,
                targets: config.atlas_targets,
                instances_per_target: config.atlas_instances,
            },
        )
        .run();
        let onems_cfg = ProximityConfig {
            threshold_ms: 1.0,
            centroid_radius_km: 0.0,
            nearby_max_km: f64::MAX,
            ..config.proximity.clone()
        };
        let (rtt_1ms, _) = build_dataset(&world, &records_1ms, &onems_cfg);
        atlas_clock.finish(&mut stages, rtt.len() + rtt_1ms.len());

        // §2.3.1 DNS-based ground truth + §2.3.3 combination.
        let engine = RuleEngine::with_gt_rules(&world);
        let whois = MappingService::build(&world);
        let gt = time_stage(
            &mut stages,
            "ground_truth",
            |g: &GroundTruth| g.entries.len(),
            || {
                let dns = GroundTruth::dns_based(&world, &engine, &whois, config.dns_gt_scale);
                GroundTruth::combine(dns, GroundTruth::from_rtt(&rtt, &whois))
            },
        );

        // §2.2 the four databases.
        let signals = SignalWorld::new(&world);
        let dbs = time_stage(
            &mut stages,
            "vendor_dbs",
            |dbs: &Vec<InMemoryDb>| dbs.len() * world.plan().blocks().len(),
            || {
                VendorProfile::all_presets()
                    .iter()
                    .map(|p| build_vendor_with(&signals, p, &pool))
                    .collect()
            },
        );

        let gazetteer = Gazetteer::from_world(&world, config.seed ^ 0x6E0, 3.0);

        let lab = Lab {
            config,
            world,
            dbs,
            whois,
            engine,
            ark,
            rtt,
            rtt_1ms,
            qa,
            atlas_records: records,
            gt,
            gazetteer,
            pool,
        };
        (lab, stages)
    }

    /// Spawn a live bulk whois server over this lab's world — the
    /// socket twin of [`Lab::whois`], for exercising the resilient
    /// lookup path (optionally through a fault-injecting proxy).
    pub fn spawn_whois(&self) -> std::io::Result<WhoisServer> {
        WhoisServer::spawn(std::sync::Arc::new(MappingService::build(&self.world)))
    }

    /// Re-annotate the ground truth's RIRs through `client` (typically
    /// pointed at [`Lab::spawn_whois`], possibly via a chaos proxy).
    /// Failures degrade the per-region report instead of aborting.
    pub fn annotate_rir_over_socket(&mut self, client: &BulkClient) -> RirAnnotation {
        self.gt.annotate_rir_bulk(client)
    }

    /// Serialize each vendor database to an RGDB image, in the paper's
    /// vendor order — the serving twin of [`Lab::dbs`]. Each range is
    /// decomposed into covering CIDR prefixes, so a daemon serving the
    /// image answers exactly what the in-memory range map would.
    pub fn vendor_images(&self) -> Vec<bytes::Bytes> {
        self.dbs
            .iter()
            .enumerate()
            .map(|(ix, db)| {
                routergeo_db::rgdb::write(&format!("vendor-{ix}"), Lab::vendor_entries(db))
            })
            .collect()
    }

    /// [`Lab::vendor_images`] in the v2.1 cache-locality format (root
    /// table + level-order nodes) — same prefixes and payloads, so a
    /// daemon can hot-swap freely between the two encodings of a
    /// vendor.
    pub fn vendor_images_v21(&self) -> Vec<bytes::Bytes> {
        self.dbs
            .iter()
            .enumerate()
            .map(|(ix, db)| {
                routergeo_db::rgdb2::write_v21(&format!("vendor-{ix}"), Lab::vendor_entries(db))
            })
            .collect()
    }

    /// The covering-prefix rows a vendor database serializes to.
    fn vendor_entries(db: &InMemoryDb) -> Vec<(Prefix, &routergeo_db::LocationRecord)> {
        db.iter()
            .flat_map(|(start, end, rec)| {
                Prefix::cover_range(start, end)
                    .into_iter()
                    .map(move |p| (p, rec))
            })
            .collect()
    }

    /// Convenience: a small lab for tests.
    pub fn small(seed: u64) -> Lab {
        Lab::build(LabConfig::new(seed, Scale::Small))
    }

    /// Convenience: a tiny lab for unit tests.
    pub fn tiny(seed: u64) -> Lab {
        Lab::build(LabConfig::new(seed, Scale::Tiny))
    }
}

//! One function per paper artifact (see DESIGN.md's experiment index).
//!
//! Each returns structured results plus rendered [`TextTable`]s, so the
//! `repro` binary can print them and the Criterion benches can assert the
//! qualitative shapes without re-parsing text.

use crate::Lab;
use routergeo_core::accuracy::{self, AccuracyReport};
use routergeo_core::arin_case::{arin_case_study, ArinCaseStudy};
use routergeo_core::consistency::{consistency_from_view, ConsistencyReport};
use routergeo_core::coverage::{coverage_from_view, CoverageReport};
use routergeo_core::groundtruth::{GtMethod, Table1Row};
use routergeo_core::methodology::{methodology_checks, MethodologyReport};
use routergeo_core::recommend::recommendations;
use routergeo_core::report::{cdf_series, pct, TextTable};
use routergeo_core::validation::{
    churn_stats, dns_vs_onems, dns_vs_rtt, rtt_vs_onems, ChurnStats, OverlapAgreement,
};
use routergeo_core::ResolvedView;
use routergeo_dns::ChurnConfig;
use routergeo_geo::{Rir, CITY_RANGE_KM};

/// Diagnostic: composition of the world and the Ark set — operator-kind
/// shares and the share of addresses whose registry country disagrees with
/// their true country (the raw material for every country-level error).
pub fn world_stats(lab: &Lab) -> TextTable {
    use routergeo_world::OperatorKind;
    let mut t = TextTable::new(
        "Diagnostics: world / Ark composition",
        &[
            "population",
            "total",
            "global",
            "domestic",
            "stub",
            "registry!=true",
        ],
    );
    let classify = |ips: &mut dyn Iterator<Item = std::net::Ipv4Addr>| {
        let (mut g, mut d, mut s, mut mismatch, mut total) =
            (0usize, 0usize, 0usize, 0usize, 0usize);
        for ip in ips {
            let Some(info) = lab.world.block_info(ip) else {
                continue;
            };
            total += 1;
            match lab.world.operator(info.op).kind {
                OperatorKind::GlobalTransit => g += 1,
                OperatorKind::DomesticTransit => d += 1,
                OperatorKind::Stub => s += 1,
            }
            let true_cc = lab.world.city(info.city).country;
            if info.registry_country != true_cc {
                mismatch += 1;
            }
        }
        (total, g, d, s, mismatch)
    };
    let (total, g, d, s, m) = classify(&mut lab.world.interfaces.iter().map(|i| i.ip));
    t.row(&[
        "world interfaces".into(),
        total.to_string(),
        pct(routergeo_geo::stats::ratio(g, total)),
        pct(routergeo_geo::stats::ratio(d, total)),
        pct(routergeo_geo::stats::ratio(s, total)),
        pct(routergeo_geo::stats::ratio(m, total)),
    ]);
    let (total, g, d, s, m) = classify(&mut lab.ark.interfaces.iter().copied());
    t.row(&[
        "Ark set".into(),
        total.to_string(),
        pct(routergeo_geo::stats::ratio(g, total)),
        pct(routergeo_geo::stats::ratio(d, total)),
        pct(routergeo_geo::stats::ratio(s, total)),
        pct(routergeo_geo::stats::ratio(m, total)),
    ]);
    let (total, g, d, s, m) = classify(&mut lab.gt.entries.iter().map(|e| e.ip));
    t.row(&[
        "ground truth".into(),
        total.to_string(),
        pct(routergeo_geo::stats::ratio(g, total)),
        pct(routergeo_geo::stats::ratio(d, total)),
        pct(routergeo_geo::stats::ratio(s, total)),
        pct(routergeo_geo::stats::ratio(m, total)),
    ]);
    t
}

/// Diagnostic: per-domain DNS ground-truth sizes vs the paper's targets.
pub fn gt_domain_stats(lab: &Lab) -> TextTable {
    let mut counts: std::collections::HashMap<&str, usize> = Default::default();
    for e in lab.gt.of_method(GtMethod::DnsBased) {
        *counts
            .entry(e.domain.as_deref().unwrap_or("?"))
            .or_default() += 1;
    }
    let mut t = TextTable::new(
        "Diagnostics: DNS ground truth per domain (paper targets in S2.3.1)",
        &["domain", "addresses", "paper"],
    );
    for (name, target) in routergeo_core::groundtruth::DNS_DOMAIN_TARGETS {
        let domain = lab
            .world
            .operator_by_name(name)
            .and_then(|id| lab.world.operator(id).domain.clone())
            .unwrap_or_default();
        t.row(&[
            domain.clone(),
            counts
                .get(domain.as_str())
                .copied()
                .unwrap_or(0)
                .to_string(),
            target.to_string(),
        ]);
    }
    t
}

/// Diagnostic: probe population by RIR (registered country's registry).
pub fn probe_stats(lab: &Lab) -> TextTable {
    let mut by_rir: std::collections::HashMap<Rir, usize> = Default::default();
    for p in &lab.world.probes {
        if let Some(info) = routergeo_geo::country::lookup(p.registered_country) {
            *by_rir.entry(info.rir).or_default() += 1;
        }
    }
    let mut t = TextTable::new("Diagnostics: probes by registered RIR", &["RIR", "probes"]);
    for rir in Rir::TABLE1_ORDER {
        t.row(&[
            rir.name().to_string(),
            by_rir.get(&rir).copied().unwrap_or(0).to_string(),
        ]);
    }
    t
}

/// E1 — Table 1: ground-truth statistics and regional distribution.
pub fn table1(lab: &Lab) -> (Table1Row, Table1Row, TextTable) {
    let dns = lab.gt.table1_row(GtMethod::DnsBased);
    let rtt = lab.gt.table1_row(GtMethod::RttProximity);
    let mut t = TextTable::new(
        "Table 1: location statistics and regional distribution of ground truth",
        &[
            "Ground Truth",
            "Total",
            "Countries",
            "lat/lon",
            "ARIN",
            "APNIC",
            "AFRINIC",
            "LACNIC",
            "RIPENCC",
            "degraded",
        ],
    );
    for (name, row) in [("DNS-based", &dns), ("RTT-proximity", &rtt)] {
        t.row(&[
            name.to_string(),
            row.total.to_string(),
            row.countries.to_string(),
            row.unique_coords.to_string(),
            row.per_rir[0].to_string(),
            row.per_rir[1].to_string(),
            row.per_rir[2].to_string(),
            row.per_rir[3].to_string(),
            row.per_rir[4].to_string(),
            row.degraded.to_string(),
        ]);
    }
    (dns, rtt, t)
}

/// Resolve the Ark interface set once across all databases — the shared
/// view the coverage and consistency stages consume.
pub fn ark_view(lab: &Lab) -> ResolvedView {
    ResolvedView::build_with(&lab.dbs, &lab.ark.interfaces, &lab.pool)
}

/// Resolve the ground-truth addresses once across all databases — the
/// shared view every §5.2 accuracy figure consumes.
pub fn gt_view(lab: &Lab) -> ResolvedView {
    let ips: Vec<std::net::Ipv4Addr> = lab.gt.entries.iter().map(|e| e.ip).collect();
    ResolvedView::build_with(&lab.dbs, &ips, &lab.pool)
}

/// E2a — §5.1 coverage of the four databases over the Ark set.
pub fn ark_coverage(lab: &Lab) -> (Vec<CoverageReport>, TextTable) {
    ark_coverage_from(&ark_view(lab))
}

/// [`ark_coverage`] from a pre-built Ark [`ResolvedView`].
pub fn ark_coverage_from(view: &ResolvedView) -> (Vec<CoverageReport>, TextTable) {
    let reports: Vec<CoverageReport> = (0..view.db_count())
        .map(|d| coverage_from_view(view, d))
        .collect();
    let mut t = TextTable::new(
        format!(
            "S5.1: database coverage over the Ark-topo-router set ({} interfaces)",
            view.len()
        ),
        &["Database", "country-level", "city-level"],
    );
    for r in &reports {
        t.row(&[
            r.database.clone(),
            pct(r.country_coverage()),
            pct(r.city_coverage()),
        ]);
    }
    (reports, t)
}

/// E2b + E3 — §5.1 pairwise consistency and the Figure 1 distance CDFs.
pub fn ark_consistency(lab: &Lab) -> (ConsistencyReport, Vec<TextTable>) {
    ark_consistency_from(&ark_view(lab))
}

/// [`ark_consistency`] from a pre-built Ark [`ResolvedView`].
pub fn ark_consistency_from(view: &ResolvedView) -> (ConsistencyReport, Vec<TextTable>) {
    let report = consistency_from_view(view);
    let mut tables = Vec::new();

    let mut t = TextTable::new(
        "S5.1: pairwise country-level agreement over the Ark set",
        &["Pair", "agreement"],
    );
    let n = report.databases.len();
    for i in 0..n {
        for j in i + 1..n {
            t.row(&[
                format!("{} vs {}", report.databases[i], report.databases[j]),
                pct(report.country_agree[i][j]),
            ]);
        }
    }
    t.row(&["ALL databases".to_string(), pct(report.all_agreement())]);
    tables.push(t);

    let mut t = TextTable::new(
        format!(
            "Figure 1: pairwise city-level distance, over {} addresses city-level in all 4 DBs",
            report.city_in_all
        ),
        &["Pair", "identical", "> 40 km", "median km"],
    );
    for i in 0..n {
        for j in i + 1..n {
            let cdf = report.pair(i, j).expect("pair computed");
            t.row(&[
                format!("{} vs {}", report.databases[i], report.databases[j]),
                pct(cdf.fraction_leq(0.0)),
                pct(cdf.fraction_gt(CITY_RANGE_KM)),
                cdf.median().map(|m| format!("{m:.1}")).unwrap_or_default(),
            ]);
        }
    }
    // NaN-drop footer: distances that could not enter any CDF. Mirrors
    // the fig3 degraded-coverage line — never silently shrink a figure.
    if report.dropped_nan > 0 {
        t.row(&[
            "DROPPED (non-finite distance)".to_string(),
            report.dropped_nan.to_string(),
            String::new(),
            String::new(),
        ]);
    }
    tables.push(t);

    // Full CDF series for the paper's four plotted pairs.
    for (i, j) in [(1usize, 2usize), (0, 3), (2, 3), (0, 2)] {
        if let Some(cdf) = report.pair(i, j) {
            tables.push(cdf_series(
                &format!("{} vs {}", report.databases[i], report.databases[j]),
                cdf,
                -2,
                4,
            ));
        }
    }
    (report, tables)
}

/// E4 — §5.2.1 coverage and accuracy over ground truth + Figure 2 CDFs.
pub fn gt_accuracy(lab: &Lab) -> (AccuracyReport, Vec<TextTable>) {
    gt_accuracy_from(lab, &gt_view(lab))
}

/// [`gt_accuracy`] from a pre-built ground-truth [`ResolvedView`] (rows
/// in `lab.gt.entries` order).
pub fn gt_accuracy_from(lab: &Lab, view: &ResolvedView) -> (AccuracyReport, Vec<TextTable>) {
    let report = accuracy::evaluate_from_view(view, &lab.gt, 20);
    let mut tables = Vec::new();

    let mut t = TextTable::new(
        format!(
            "S5.2.1: coverage and accuracy over the ground truth ({} addresses)",
            lab.gt.len()
        ),
        &[
            "Database",
            "country cov",
            "country acc",
            "city cov",
            "city acc(40km)",
            "n(city)",
        ],
    );
    for a in &report.overall {
        t.row(&[
            a.database.clone(),
            pct(a.country_coverage()),
            pct(a.country_accuracy()),
            pct(a.city_coverage()),
            pct(a.city_accuracy()),
            a.city_covered.to_string(),
        ]);
    }
    // NaN-drop footer, as in Figure 1: errors excluded from the CDFs.
    let dropped: usize = report.overall.iter().map(|a| a.dropped_nan).sum();
    if dropped > 0 {
        t.row(&[
            "DROPPED (non-finite error)".to_string(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            dropped.to_string(),
        ]);
    }
    tables.push(t);

    for a in &report.overall {
        tables.push(cdf_series(
            &format!(
                "Figure 2: {} vs ground truth ({})",
                a.database, a.city_covered
            ),
            &a.error_cdf,
            -3,
            4,
        ));
    }
    (report, tables)
}

/// E5 — Figure 3: country-level accuracy stacked by RIR.
pub fn fig3(report: &AccuracyReport) -> TextTable {
    let mut t = TextTable::new(
        "Figure 3: country-level accuracy breakdown by RIR (percent incorrect)",
        &[
            "RIR",
            "n",
            "IP2Loc-Lite",
            "MM-GeoLite",
            "MM-Paid",
            "NetAcuity",
        ],
    );
    for (k, rir) in Rir::TABLE1_ORDER.iter().enumerate() {
        let n = report.by_rir[0][k].total;
        let mut cells = vec![rir.name().to_string(), n.to_string()];
        for db in 0..report.databases.len() {
            let a = &report.by_rir[db][k];
            cells.push(pct(1.0 - a.country_accuracy()));
        }
        t.row(&cells);
    }
    // Degraded-coverage line: when the RIR annotation lost addresses
    // (whois service partially down), report the bucket instead of
    // silently shrinking the regional rows.
    if report.rir_coverage < 1.0 && !report.degraded.is_empty() {
        let n = report.degraded[0].total;
        let mut cells = vec![
            format!("UNKNOWN (RIR coverage {})", pct(report.rir_coverage)),
            n.to_string(),
        ];
        for db in 0..report.databases.len() {
            let a = &report.degraded[db];
            cells.push(pct(1.0 - a.country_accuracy()));
        }
        t.row(&cells);
    }
    t
}

/// E6 — Figure 4: per-country accuracy for the top-20 ground-truth
/// countries, plus the §5.2.2 common-wrong-answer count.
pub fn fig4(lab: &Lab, report: &AccuracyReport) -> (usize, TextTable) {
    fig4_from(lab, &gt_view(lab), report)
}

/// [`fig4`] from a pre-built ground-truth [`ResolvedView`]: the
/// common-wrong count reads the three registry-fed columns directly —
/// no record is materialized just to compare countries.
pub fn fig4_from(lab: &Lab, view: &ResolvedView, report: &AccuracyReport) -> (usize, TextTable) {
    let mut t = TextTable::new(
        "Figure 4: country-level accuracy for the top-20 ground-truth countries",
        &[
            "CC",
            "n",
            "IP2Loc-Lite",
            "MM-GeoLite",
            "MM-Paid",
            "NetAcuity",
        ],
    );
    for (cc, n, accs) in &report.by_country {
        let mut cells = vec![cc.to_string(), n.to_string()];
        for a in accs {
            cells.push(format!("{:.2}", a.country_accuracy()));
        }
        t.row(&cells);
    }
    let common_wrong = accuracy::common_wrong_from_view(view, [0, 1, 2], &lab.gt);
    (common_wrong, t)
}

/// E7 — Figures 5a/5b: city-level error by RIR (all four databases; the
/// paper plots MaxMind-Paid and NetAcuity and omits the rest for space).
pub fn fig5(report: &AccuracyReport) -> Vec<TextTable> {
    let mut tables = Vec::new();
    for (db_idx, name) in report.databases.iter().enumerate() {
        let mut t = TextTable::new(
            format!("Figure 5: {name} city-level error by RIR"),
            &["RIR", "n(city)", "<=40km", "median km", "coverage"],
        );
        for (k, rir) in Rir::TABLE1_ORDER.iter().enumerate() {
            let a = &report.by_rir[db_idx][k];
            t.row(&[
                rir.name().to_string(),
                a.city_covered.to_string(),
                pct(a.city_accuracy()),
                a.error_cdf
                    .median()
                    .map(|m| format!("{m:.1}"))
                    .unwrap_or_default(),
                pct(a.city_coverage()),
            ]);
        }
        tables.push(t);
    }
    tables
}

/// E8 — §5.2.3 ARIN case study, for every database (the paper dissects
/// MaxMind-Paid).
pub fn arin(lab: &Lab) -> (Vec<ArinCaseStudy>, TextTable) {
    let cases: Vec<ArinCaseStudy> = lab
        .dbs
        .iter()
        .map(|db| arin_case_study(db, &lab.gt))
        .collect();
    let mut t = TextTable::new(
        "S5.2.3: ARIN case study",
        &[
            "Database",
            "ARIN gt",
            "non-US",
            "pulled->US",
            "w/ city",
            ">1000km",
            "US city ans",
            "wrong(>40km)",
            "wrong blk-lvl",
            "right blk-lvl",
        ],
    );
    for c in &cases {
        t.row(&[
            c.database.clone(),
            c.arin_total.to_string(),
            c.arin_non_us.to_string(),
            c.non_us_pulled_to_us.to_string(),
            c.pulled_with_city.to_string(),
            c.pulled_city_over_1000km.to_string(),
            c.us_city_answers.to_string(),
            c.us_city_wrong.to_string(),
            c.wrong_block_level.to_string(),
            c.right_block_level.to_string(),
        ]);
    }
    (cases, t)
}

/// E9 — §5.2.4 accuracy split by ground-truth method.
pub fn method_split(report: &AccuracyReport) -> TextTable {
    let mut t = TextTable::new(
        "S5.2.4: city accuracy/coverage by ground-truth method",
        &[
            "Database",
            "DNS acc",
            "DNS cov",
            "RTT acc",
            "RTT cov",
            "better on DNS?",
        ],
    );
    for (i, name) in report.databases.iter().enumerate() {
        let [dns, rtt] = &report.by_method[i];
        t.row(&[
            name.clone(),
            pct(dns.city_accuracy()),
            pct(dns.city_coverage()),
            pct(rtt.city_accuracy()),
            pct(rtt.city_coverage()),
            if dns.city_accuracy() > rtt.city_accuracy() {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    t
}

/// E10/E11 — §3 ground-truth validation: cross-dataset agreement, probe
/// QA counters, and hostname churn.
pub fn validation(lab: &Lab) -> (OverlapAgreement, ChurnStats, Vec<TextTable>) {
    let overlap = dns_vs_rtt(&lab.gt, &lab.rtt);
    let churn = churn_stats(&lab.world, &lab.engine, &lab.gt, ChurnConfig::default());
    let mut tables = Vec::new();

    let mut t = TextTable::new(
        "S3.1: DNS-based vs RTT-proximity agreement on common addresses",
        &["common", "<=10km", "<=40km", "<=100km"],
    );
    t.row(&[
        overlap.common.to_string(),
        overlap.within_10km.to_string(),
        overlap.within_40km.to_string(),
        overlap.within_100km.to_string(),
    ]);
    tables.push(t);

    let onems_dns = dns_vs_onems(&lab.gt, &lab.rtt_1ms);
    let onems_rtt = rtt_vs_onems(&lab.rtt, &lab.rtt_1ms);
    let mut t = TextTable::new(
        format!(
            "S3.1/S3.2: vs the later 1ms-RTT-proximity set ({} addrs)",
            lab.rtt_1ms.len()
        ),
        &["comparison", "common", "<=40km", "<=100km"],
    );
    t.row(&[
        "DNS-based vs 1ms".into(),
        onems_dns.common.to_string(),
        pct(onems_dns.frac_within_40km()),
        pct(onems_dns.frac_within_100km()),
    ]);
    t.row(&[
        "0.5ms (QA'd) vs 1ms".into(),
        onems_rtt.common.to_string(),
        pct(onems_rtt.frac_within_40km()),
        pct(onems_rtt.frac_within_100km()),
    ]);
    tables.push(t);

    let mut t = TextTable::new(
        "S3.1: 16-month hostname churn over the DNS-based ground truth",
        &[
            "total",
            "same",
            "changed",
            "gone",
            "chg same loc",
            "chg moved",
            "chg no hint",
        ],
    );
    t.row(&[
        churn.total.to_string(),
        churn.same.to_string(),
        churn.changed().to_string(),
        churn.gone.to_string(),
        churn.changed_same_location.to_string(),
        churn.changed_moved.to_string(),
        churn.changed_hint_lost.to_string(),
    ]);
    tables.push(t);

    let q = &lab.qa;
    let mut t = TextTable::new(
        "S3.2: RTT-proximity probe QA",
        &[
            "candidates",
            "centroid probes",
            "removed(centroid)",
            "nearby groups",
            "inconsistent",
            "disqualified",
            "removed(consist)",
            "final",
        ],
    );
    t.row(&[
        q.candidates_before.to_string(),
        q.centroid_probes.len().to_string(),
        q.removed_by_centroid.to_string(),
        q.nearby_groups.to_string(),
        q.inconsistent_groups.to_string(),
        q.disqualified_probes.len().to_string(),
        q.removed_by_consistency.to_string(),
        q.final_size.to_string(),
    ]);
    tables.push(t);

    (overlap, churn, tables)
}

/// E12 — §4 methodology checks.
pub fn methodology(lab: &Lab) -> (MethodologyReport, TextTable) {
    // Sample the Ark set to bound cost at paper scale.
    let sample: Vec<std::net::Ipv4Addr> = lab
        .ark
        .interfaces
        .iter()
        .step_by((lab.ark.len() / 50_000).max(1))
        .copied()
        .collect();
    let report = methodology_checks(&lab.dbs, &lab.gazetteer, &sample);
    let mut t = TextTable::new(
        "S4: methodology checks (coordinates within 40 km)",
        &["Check", "compared", "within 40 km"],
    );
    for (name, total, ok) in &report.gazetteer_check {
        t.row(&[
            format!("{name} vs gazetteer"),
            total.to_string(),
            pct(routergeo_geo::stats::ratio(*ok, *total)),
        ]);
    }
    for (a, b, total, ok) in &report.cross_db_check {
        t.row(&[
            format!("{a} vs {b} (same city)"),
            total.to_string(),
            pct(routergeo_geo::stats::ratio(*ok, *total)),
        ]);
    }
    (report, t)
}

/// Extension X1 — the majority-vote methodology of the prior work the
/// paper contrasts against (§7): apparent accuracy (vs the databases'
/// majority) against true accuracy (vs ground truth), plus the blind spot
/// (agreeing while wrong).
pub fn majority(lab: &Lab) -> TextTable {
    let comparisons = routergeo_core::majority::compare_against_majority(&lab.dbs, &lab.gt);
    let mut t = TextTable::new(
        "Extension: majority-vote vs ground-truth evaluation (country level)",
        &[
            "Database",
            "scored",
            "apparent acc",
            "true acc",
            "overstated by",
            "agree-but-wrong",
        ],
    );
    for c in &comparisons {
        t.row(&[
            c.database.clone(),
            c.scored.to_string(),
            pct(c.apparent_accuracy()),
            pct(c.true_accuracy()),
            pct(c.overstatement()),
            c.agree_but_wrong.to_string(),
        ]);
    }
    t
}

/// Extension X2 — §8's closing claim: databases geolocate end hosts better
/// than routers.
pub fn endpoints(lab: &Lab) -> TextTable {
    let comparisons =
        routergeo_core::endpoint::routers_vs_endpoints(&lab.dbs, &lab.world, &lab.gt, 5_000);
    let mut t = TextTable::new(
        "Extension: router vs end-host accuracy",
        &[
            "Database",
            "router country",
            "endpoint country",
            "gap",
            "router city",
            "endpoint city",
        ],
    );
    for c in &comparisons {
        t.row(&[
            c.database.clone(),
            pct(c.routers.country_accuracy()),
            pct(c.endpoints.country_accuracy()),
            pct(c.country_gap()),
            pct(c.routers.city_accuracy()),
            pct(c.endpoints.city_accuracy()),
        ]);
    }
    t
}

/// Extension X3 — delay-based geolocation (the paper's §1 alternative):
/// CBG over the Atlas probe fleet vs the databases, on the routers CBG can
/// reach with ≥ 2 landmarks.
pub fn cbg(lab: &Lab) -> TextTable {
    use routergeo_db::GeoDatabase;
    let results = routergeo_rtt::cbg::evaluate_cbg(&lab.world, &lab.atlas_records, 20.0, 2);
    let mut t = TextTable::new(
        format!(
            "Extension: CBG (delay-based) vs databases over {} multi-landmark routers",
            results.len()
        ),
        &["Method", "median km", "<=40km", "<=100km", "coverage"],
    );
    let (cbg_cdf, mut dropped_nan) =
        routergeo_geo::EmpiricalCdf::from_iter_lossy(results.iter().map(|(_, _, err)| *err));
    t.row(&[
        "CBG (probes as landmarks)".to_string(),
        cbg_cdf
            .median()
            .map(|m| format!("{m:.1}"))
            .unwrap_or_default(),
        pct(cbg_cdf.fraction_leq(40.0)),
        pct(cbg_cdf.fraction_leq(100.0)),
        "100.0%".to_string(),
    ]);
    for db in &lab.dbs {
        let mut errs = Vec::new();
        let mut covered = 0usize;
        for (ip, _, _) in &results {
            let Some(rec) = db.lookup(*ip) else { continue };
            if !rec.has_city() {
                continue;
            }
            covered += 1;
            let router = lab.world.router_of_ip(*ip).expect("interface");
            errs.push(rec.coord.expect("city").distance_km(&router.coord));
        }
        let (cdf, db_dropped) = routergeo_geo::EmpiricalCdf::from_iter_lossy(errs);
        dropped_nan += db_dropped;
        t.row(&[
            db.name().to_string(),
            cdf.median().map(|m| format!("{m:.1}")).unwrap_or_default(),
            pct(cdf.fraction_leq(40.0)),
            pct(cdf.fraction_leq(100.0)),
            pct(routergeo_geo::stats::ratio(covered, results.len())),
        ]);
    }
    if dropped_nan > 0 {
        t.row(&[
            "DROPPED (non-finite error)".to_string(),
            dropped_nan.to_string(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    t
}

/// Extension X4 — temporal drift: re-release every database one epoch
/// later (the paper's 50-day re-access, §5.2) and check that the drift is
/// small and the accuracy conclusions are unchanged.
pub fn temporal(lab: &Lab) -> (TextTable, TextTable) {
    use routergeo_db::diff::diff_databases;
    use routergeo_db::synth::{build_vendor_with, SignalWorld, VendorProfile};

    let signals = SignalWorld::new(&lab.world);
    let later: Vec<_> = VendorProfile::all_presets()
        .into_iter()
        .map(|p| build_vendor_with(&signals, &p.at_epoch(1), &lab.pool))
        .collect();

    let gt_ips: Vec<std::net::Ipv4Addr> = lab.gt.entries.iter().map(|e| e.ip).collect();
    let mut drift = TextTable::new(
        "Extension: snapshot drift over one release epoch (ground-truth addresses)",
        &[
            "Database",
            "any change",
            "material (>40km or country)",
            "median move km",
        ],
    );
    for (old, new) in lab.dbs.iter().zip(later.iter()) {
        let report = diff_databases(old, new, &gt_ips);
        drift.row(&[
            report.database.clone(),
            pct(report.any_change_rate()),
            pct(report.material_change_rate()),
            report
                .move_cdf
                .median()
                .map(|m| format!("{m:.1}"))
                .unwrap_or_else(|| "0".into()),
        ]);
    }

    let before = accuracy::evaluate_with(&lab.dbs, &lab.gt, 5, &lab.pool);
    let after = accuracy::evaluate_with(&later, &lab.gt, 5, &lab.pool);
    let mut acc = TextTable::new(
        "Extension: accuracy before/after one release epoch",
        &[
            "Database",
            "country acc (old)",
            "country acc (new)",
            "city acc (old)",
            "city acc (new)",
        ],
    );
    for (a, b) in before.overall.iter().zip(after.overall.iter()) {
        acc.row(&[
            a.database.clone(),
            pct(a.country_accuracy()),
            pct(b.country_accuracy()),
            pct(a.city_accuracy()),
            pct(b.city_accuracy()),
        ]);
    }
    (drift, acc)
}

/// Extension X5 — HLOC-style hint verification: confirm/refute hostname
/// hints with latency constraints, before and after 16 months of churn.
pub fn hloc(lab: &Lab) -> TextTable {
    use routergeo_core::hloc::verify_hints;
    use routergeo_dns::{ChurnConfig, ChurnModel, ChurnOutcome};

    let fresh = verify_hints(
        &lab.world,
        &lab.engine,
        &lab.atlas_records,
        20.0,
        30.0,
        None,
    );
    let model = ChurnModel::new(&lab.world, ChurnConfig::default());
    let churned = |id: routergeo_world::InterfaceId| -> Option<String> {
        match model.evolve(id) {
            ChurnOutcome::Same(h)
            | ChurnOutcome::RenamedSameLocation(h)
            | ChurnOutcome::HintLost(h)
            | ChurnOutcome::Moved(h, _) => Some(h),
            ChurnOutcome::Gone => None,
        }
    };
    let evolved = verify_hints(
        &lab.world,
        &lab.engine,
        &lab.atlas_records,
        20.0,
        30.0,
        Some(&churned),
    );

    let mut t = TextTable::new(
        "Extension: HLOC-style hint verification with latency constraints",
        &[
            "snapshot",
            "decoded",
            "confirmed",
            "refuted",
            "unverifiable",
            "confirm rate",
        ],
    );
    for (label, r) in [
        ("fresh hostnames", &fresh),
        ("after 16-month churn", &evolved),
    ] {
        t.row(&[
            label.to_string(),
            r.decoded.to_string(),
            r.confirmed.to_string(),
            r.refuted.to_string(),
            r.unverifiable.to_string(),
            pct(r.confirmation_rate()),
        ]);
    }
    t
}

/// §6 — the recommendations derived from the measured report.
pub fn recommend(report: &AccuracyReport) -> String {
    let mut out = String::from("== S6: recommendations ==\n");
    for (i, rec) in recommendations(report).iter().enumerate() {
        out.push_str(&format!("{}. {}\n   [{}]\n", i + 1, rec.text, rec.evidence));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // One shared tiny lab: building it is the expensive part.
    fn lab() -> &'static Lab {
        use std::sync::OnceLock;
        static LAB: OnceLock<Lab> = OnceLock::new();
        LAB.get_or_init(|| Lab::tiny(777))
    }

    /// The pinned old-vs-new check at pipeline level: analyses fed one
    /// shared [`ResolvedView`] must render byte-identical tables to the
    /// per-analysis entry points (which build their own views), and the
    /// §5.2.2 common-wrong count must match a naive triple-`lookup`
    /// loop over the ground truth.
    #[test]
    fn shared_view_pipeline_is_byte_identical() {
        use routergeo_db::GeoDatabase;
        let l = lab();
        let ark = ark_view(l);
        let gtv = gt_view(l);

        let (_, direct_cov) = ark_coverage(l);
        let (_, shared_cov) = ark_coverage_from(&ark);
        assert_eq!(shared_cov.render(), direct_cov.render());

        let (_, direct_con) = ark_consistency(l);
        let (_, shared_con) = ark_consistency_from(&ark);
        assert_eq!(shared_con.len(), direct_con.len());
        for (s, d) in shared_con.iter().zip(&direct_con) {
            assert_eq!(s.render(), d.render());
        }

        let (shared_rep, shared_acc) = gt_accuracy_from(l, &gtv);
        let (_, direct_acc) = gt_accuracy(l);
        for (s, d) in shared_acc.iter().zip(&direct_acc) {
            assert_eq!(s.render(), d.render());
        }

        let (shared_wrong, _) = fig4_from(l, &gtv, &shared_rep);
        let naive_wrong =
            l.gt.entries
                .iter()
                .filter(|e| {
                    let ans: Vec<_> = l.dbs[..3]
                        .iter()
                        .map(|d| d.lookup(e.ip).and_then(|r| r.country))
                        .collect();
                    matches!(
                        (&ans[0], &ans[1], &ans[2]),
                        (Some(a), Some(b), Some(c)) if a == b && b == c && *a != e.country
                    )
                })
                .count();
        assert_eq!(shared_wrong, naive_wrong);
    }

    #[test]
    fn table1_has_two_rows_and_consistent_totals() {
        let (dns, rtt, t) = table1(lab());
        assert_eq!(t.len(), 2);
        assert_eq!(dns.total + rtt.total, lab().gt.len());
        assert!(dns.total > 0 && rtt.total > 0);
    }

    #[test]
    fn ark_coverage_shape() {
        let (reports, t) = ark_coverage(lab());
        assert_eq!(reports.len(), 4);
        assert_eq!(t.len(), 4);
        // IP2Location/NetAcuity city coverage above MaxMind's.
        assert!(reports[0].city_coverage() > reports[1].city_coverage());
        assert!(reports[3].city_coverage() > reports[2].city_coverage());
        // MaxMind country coverage still high.
        assert!(reports[1].country_coverage() > 0.95);
    }

    #[test]
    fn consistency_shape() {
        let (report, tables) = ark_consistency(lab());
        assert!(!tables.is_empty());
        // MaxMind pair agrees more than cross-vendor pairs.
        let mm = report.country_agree[1][2];
        for (i, j) in [(0, 1), (0, 2), (0, 3), (1, 3), (2, 3)] {
            assert!(
                mm >= report.country_agree[i][j],
                "MM pair {mm} vs ({i},{j}) {}",
                report.country_agree[i][j]
            );
        }
        assert!(report.all_agreement() > 0.5);
    }

    #[test]
    fn accuracy_and_figures_render() {
        let (report, tables) = gt_accuracy(lab());
        assert_eq!(report.overall.len(), 4);
        assert!(!tables.is_empty());
        let f3 = fig3(&report);
        assert_eq!(f3.len(), 5);
        let (_, f4) = fig4(lab(), &report);
        assert!(f4.len() <= 20 && !f4.is_empty());
        let f5 = fig5(&report);
        assert_eq!(f5.len(), 4);
        let split = method_split(&report);
        assert_eq!(split.len(), 4);
    }

    #[test]
    fn netacuity_best_country_accuracy_on_gt() {
        let (report, _) = gt_accuracy(lab());
        let neta = report.overall[3].country_accuracy();
        for other in &report.overall[..3] {
            assert!(
                neta > other.country_accuracy(),
                "NetAcuity {neta} vs {} {}",
                other.database,
                other.country_accuracy()
            );
        }
    }

    #[test]
    fn arin_case_runs() {
        let (cases, t) = arin(lab());
        assert_eq!(cases.len(), 4);
        assert_eq!(t.len(), 4);
        // The registry pull must exist for the registry-fed databases.
        assert!(cases[2].non_us_pulled_to_us > 0, "{:?}", cases[2]);
    }

    #[test]
    fn validation_runs() {
        let (_, churn, tables) = validation(lab());
        assert_eq!(tables.len(), 4);
        assert_eq!(churn.total, churn.same + churn.changed() + churn.gone);
    }

    #[test]
    fn methodology_passes() {
        let (report, _) = methodology(lab());
        assert!(report.min_gazetteer_agreement() > 0.99);
        assert!(report.min_cross_db_agreement() > 0.99);
    }

    #[test]
    fn majority_vote_overstates_registry_fed_databases() {
        let t = majority(lab());
        assert_eq!(t.len(), 4);
        let comparisons = routergeo_core::majority::compare_against_majority(&lab().dbs, &lab().gt);
        // Registry-fed databases look better under majority methodology
        // than they are; NetAcuity (the dissenter) does not.
        for c in &comparisons[..3] {
            assert!(c.overstatement() > 0.0, "{c:?}");
        }
        assert!(
            comparisons[3].overstatement() < comparisons[0].overstatement(),
            "NetAcuity should benefit least from majority scoring"
        );
    }

    #[test]
    fn endpoints_are_easier_than_routers() {
        let t = endpoints(lab());
        assert_eq!(t.len(), 4);
        let cmp = routergeo_core::endpoint::routers_vs_endpoints(
            &lab().dbs,
            &lab().world,
            &lab().gt,
            2_000,
        );
        // The registry-fed databases must show a clear endpoint advantage;
        // NetAcuity's hint mining can nearly close the gap on tiny worlds.
        for c in &cmp[..3] {
            assert!(c.country_gap() > 0.0, "{}", c.database);
        }
        assert!(cmp[3].country_gap() > -0.05, "{}", cmp[3].database);
    }

    #[test]
    fn cbg_extension_runs_and_is_competitive() {
        let _ = cbg(lab());
        let results = routergeo_rtt::cbg::evaluate_cbg(&lab().world, &lab().atlas_records, 20.0, 2);
        assert!(results.len() > 100, "{} CBG targets", results.len());
        let (cdf, dropped) =
            routergeo_geo::EmpiricalCdf::from_iter_lossy(results.iter().map(|(_, _, e)| *e));
        assert_eq!(dropped, 0, "CBG errors are finite");
        assert!(cdf.median().unwrap() < 100.0);
    }

    #[test]
    fn temporal_drift_is_small_and_preserves_conclusions() {
        let (drift, _) = temporal(lab());
        assert_eq!(drift.len(), 4);
        use routergeo_db::diff::diff_databases;
        use routergeo_db::synth::{build_vendor, SignalWorld, VendorId, VendorProfile};
        let signals = SignalWorld::new(&lab().world);
        let later = build_vendor(
            &signals,
            &VendorProfile::preset(VendorId::MaxMindPaid).at_epoch(1),
        );
        let ips: Vec<std::net::Ipv4Addr> = lab().gt.entries.iter().map(|e| e.ip).collect();
        let report = diff_databases(&lab().dbs[2], &later, &ips);
        assert!(
            report.material_change_rate() < 0.06,
            "drift too large: {}",
            report.material_change_rate()
        );
        // Conclusions preserved: NetAcuity still wins after the re-release.
        let after: Vec<_> = VendorProfile::all_presets()
            .into_iter()
            .map(|p| build_vendor(&signals, &p.at_epoch(1)))
            .collect();
        let rep = accuracy::evaluate(&after, &lab().gt, 5);
        for other in &rep.overall[..3] {
            assert!(rep.overall[3].country_accuracy() > other.country_accuracy());
        }
    }

    #[test]
    fn recommendations_render() {
        let (report, _) = gt_accuracy(lab());
        let text = recommend(&report);
        assert!(text.contains("NetAcuity"), "{text}");
    }
}

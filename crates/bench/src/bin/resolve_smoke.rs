//! Paper-scale resolve smoke gate: batched v2.1 lookups under a wall
//! budget.
//!
//! The paper's core workload is millions of IP→location lookups across
//! four vendor databases (§5). This binary reproduces that shape in
//! isolation: it synthesizes four vendor-style databases as RGDB v2.1
//! images (stride-16 root table + level-order nodes), opens them
//! zero-copy, and resolves a full interface address set through
//! `ResolvedView::build_with` — the same batched `lookup_batch` path
//! the analyses use. It prints one JSON report to stdout (CI redirects
//! it into `target/ci-artifacts/`) and, when `--budget-ms` is given,
//! exits non-zero if the resolve stage alone exceeded the budget. The
//! report carries `lookup_ns_per_addr` so `cargo xtask resolve-check`
//! can ratio-gate per-lookup cost against the blessed baseline.
//!
//! ```text
//! usage: resolve_smoke [--budget-ms N]
//! environment:
//!   ROUTERGEO_SCALE       = tiny | small | tenth | paper (default: paper)
//!   ROUTERGEO_SEED        = u64 (default 20170301)
//!   ROUTERGEO_THREADS     = worker threads for the resolve stage
//!   ROUTERGEO_SMOKE_ADDRS = override the probe-address count (debug aid
//!                           for bisecting wall-time blowups at scale)
//! ```
//!
//! Everything is a pure function of `(seed, scale)` — the synthesized
//! prefixes, records, and probe addresses are identical across runs and
//! machines; only the wall-clock numbers differ.

use routergeo_bench::timing::StageClock;
use routergeo_bench::StageTiming;
use routergeo_core::ResolvedView;
use routergeo_db::record::{Granularity, LocationRecord};
use routergeo_db::rgdb2::{self, Rgdb2Reader};
use routergeo_geo::{Coordinate, CountryCode};
use routergeo_net::Prefix;
use routergeo_pool::{splitmix64, Pool};
use routergeo_world::Scale;
use std::net::Ipv4Addr;

/// Vendor database names, mirroring the paper's four commercial
/// sources.
const VENDORS: [&str; 4] = ["vendor-a", "vendor-b", "vendor-c", "vendor-d"];

/// Interface addresses resolved at `Scale::Paper` (~the paper's 1.64 M
/// Ark interface set); other scales shrink linearly with the factor.
const PAPER_ADDRESSES: u64 = 1_500_000;

/// /24 prefix rows per vendor database at `Scale::Paper` (inside the
/// 10.0.0.0/8 block the probe addresses are drawn from).
const PAPER_PREFIXES: u64 = 60_000;

/// Country pool for synthesized vendor rows.
const COUNTRIES: [&str; 8] = ["US", "DE", "FR", "JP", "BR", "GB", "NL", "AU"];

/// The vendor-`v` record for prefix row `i`. String cardinality is
/// capped (`% 4096`) so the interner dedups like a real vendor file;
/// coordinates sit on the micro-degree grid so RGDB quantization is
/// exact.
fn vendor_record(seed: u64, v: usize, i: u64) -> LocationRecord {
    let h = splitmix64(seed ^ (v as u64).rotate_left(32), i);
    let country = CountryCode::from_str_exact(COUNTRIES[(h % 8) as usize])
        .expect("pool entries are valid codes");
    let granularity = match h >> 8 & 0x3 {
        0 => Granularity::Aggregate,
        1 => Granularity::Block24,
        _ => Granularity::SubBlock,
    };
    let lat_micro = i64::try_from(splitmix64(h, 1) % 180_000_000).unwrap_or(0) - 90_000_000;
    let lon_micro = i64::try_from(splitmix64(h, 2) % 360_000_000).unwrap_or(0) - 180_000_000;
    #[allow(clippy::cast_precision_loss)] // |micro| <= 360e6: exact in f64
    let coord = Coordinate::new(lat_micro as f64 / 1e6, lon_micro as f64 / 1e6)
        .expect("grid stays inside coordinate bounds");
    LocationRecord {
        country: Some(country),
        region: if h % 5 != 0 {
            Some(format!("Region-{}", splitmix64(h, 3) % 512))
        } else {
            None
        },
        city: if h % 3 != 0 {
            Some(format!("City-{}", splitmix64(h, 4) % 4096))
        } else {
            None
        },
        coord: Some(coord),
        granularity,
    }
}

/// Synthesize vendor `v` as `(prefix, record)` rows: `prefixes` /24
/// blocks tiled over 10.0.0.0/8, with per-vendor coverage gaps (every
/// seventh row, phase-shifted by vendor) so the four databases disagree
/// on coverage the way Table 1 reports.
fn vendor_rows(seed: u64, v: usize, prefixes: u64) -> Vec<(Prefix, LocationRecord)> {
    let mut rows = Vec::with_capacity(usize::try_from(prefixes).unwrap_or(0));
    for i in 0..prefixes.min(1 << 16) {
        if (i + v as u64) % 7 == 0 {
            continue; // this vendor does not cover the block
        }
        let base = 0x0A00_0000u32 | (u32::try_from(i).unwrap_or(0) << 8);
        let prefix = Prefix::new(Ipv4Addr::from(base), 24).expect("aligned /24 inside 10/8");
        rows.push((prefix, vendor_record(seed, v, i)));
    }
    rows
}

/// The probe address set: mostly inside the vendors' 10.0.0.0/8 tiling
/// (hits), with a uniform tail that mostly misses — the same hit/miss
/// mix the analyses see.
fn probe_addresses(seed: u64, count: u64, prefixes: u64) -> Vec<Ipv4Addr> {
    let span = prefixes.min(1 << 16);
    let mut out = Vec::with_capacity(usize::try_from(count).unwrap_or(0));
    for k in 0..count {
        let h = splitmix64(seed ^ 0x5EED_ADD2, k);
        let ip = if h % 100 < 85 {
            // Inside a tiled /24: block index then host byte.
            let block = u32::try_from(splitmix64(h, 1) % span.max(1)).unwrap_or(0);
            0x0A00_0000u32 | (block << 8) | u32::try_from(h >> 32 & 0xFF).unwrap_or(0)
        } else {
            u32::try_from(splitmix64(h, 2) & 0xFFFF_FFFF).unwrap_or(0)
        };
        out.push(Ipv4Addr::from(ip));
    }
    out
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn main() {
    let mut budget_ms: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => budget_ms = Some(ms),
                None => {
                    eprintln!("--budget-ms requires an integer argument");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: resolve_smoke [--budget-ms N]");
                std::process::exit(2);
            }
        }
    }

    let scale = Scale::from_env(Scale::Paper);
    let seed = env_u64("ROUTERGEO_SEED", 20_170_301);
    let factor = u64::from(scale.factor());
    let addresses = env_u64(
        "ROUTERGEO_SMOKE_ADDRS",
        (PAPER_ADDRESSES * factor / 900).max(1_000),
    );
    let prefixes = (PAPER_PREFIXES * factor / 900).max(256);
    let pool = Pool::from_env();

    let mut stages: Vec<StageTiming> = Vec::new();

    let clock = StageClock::start("synth");
    let vendor_sets: Vec<Vec<(Prefix, LocationRecord)>> = (0..VENDORS.len())
        .map(|v| vendor_rows(seed, v, prefixes))
        .collect();
    let ips = probe_addresses(seed, addresses, prefixes);
    let rows: usize = vendor_sets.iter().map(Vec::len).sum();
    clock.finish(&mut stages, rows + ips.len());

    let clock = StageClock::start("write_v21");
    let images: Vec<bytes::Bytes> = vendor_sets
        .iter()
        .zip(VENDORS)
        .map(|(rows, name)| rgdb2::write_v21(name, rows.iter().map(|(p, r)| (*p, r))))
        .collect();
    let image_bytes: usize = images.iter().map(bytes::Bytes::len).sum();
    clock.finish(&mut stages, image_bytes);

    let clock = StageClock::start("open_v21");
    let readers: Vec<Rgdb2Reader> = images
        .into_iter()
        .map(|img| Rgdb2Reader::open(img).expect("the writer's own image validates"))
        .collect();
    clock.finish(&mut stages, readers.len());

    let clock = StageClock::start("resolve");
    let view = ResolvedView::build_with(&readers, &ips, &pool);
    clock.finish(&mut stages, view.len() * view.db_count());

    let hits: usize = (0..view.db_count())
        .map(|d| view.column(d).iter().filter(|r| r.is_some()).count())
        .sum();
    let resolve_ms = stages
        .iter()
        .find(|s| s.stage == "resolve")
        .map_or(0.0, |s| s.wall_ms);
    let within = budget_ms.is_none_or(|b| resolve_ms <= b as f64);
    let lookups = view.len() * view.db_count();
    #[allow(clippy::cast_precision_loss)] // lookup counts sit far below 2^52
    let lookup_ns_per_addr = if lookups == 0 {
        0.0
    } else {
        resolve_ms * 1e6 / lookups as f64
    };

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        format!("{scale:?}").to_lowercase()
    ));
    out.push_str(&format!("  \"threads\": {},\n", pool.threads()));
    out.push_str(&format!("  \"databases\": {},\n", VENDORS.len()));
    out.push_str(&format!("  \"addresses\": {},\n", ips.len()));
    out.push_str(&format!(
        "  \"lookups\": {},\n",
        view.len() * view.db_count()
    ));
    out.push_str(&format!("  \"hits\": {hits},\n"));
    out.push_str(&format!("  \"interned\": {},\n", view.interner().len()));
    out.push_str(&format!("  \"resolve_wall_ms\": {resolve_ms:.3},\n"));
    out.push_str(&format!(
        "  \"lookup_ns_per_addr\": {lookup_ns_per_addr:.3},\n"
    ));
    out.push_str(&format!(
        "  \"budget_ms\": {},\n",
        budget_ms.map_or("null".to_string(), |b| b.to_string())
    ));
    out.push_str(&format!("  \"within_budget\": {within},\n"));
    out.push_str("  \"stages\": [\n");
    for (i, s) in stages.iter().enumerate() {
        let comma = if i + 1 < stages.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"stage\": \"{}\", \"wall_ms\": {:.3}, \"items\": {}, \"items_per_sec\": {:.1}}}{}\n",
            s.stage,
            s.wall_ms,
            s.items,
            s.items_per_sec(),
            comma
        ));
    }
    out.push_str("  ]\n}\n");
    print!("{out}");

    if !within {
        eprintln!(
            "resolve smoke: {resolve_ms:.1} ms over the {} ms budget",
            budget_ms.unwrap_or(0)
        );
        std::process::exit(1);
    }
}

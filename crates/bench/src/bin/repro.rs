//! Regenerate every table and figure of the paper (plus extensions).
//!
//! ```text
//! usage: repro [experiment ...] [--csv DIR]
//!   experiments: stats table1 coverage consistency fig1 fig2 fig3 fig4
//!                fig5 arin split validate method recommend
//!                majority endpoints cbg temporal hloc all  (default: all)
//!   --csv DIR: additionally write every table as a CSV file into DIR
//!   --gt-out FILE: export the ground-truth dataset (the paper's released
//!                  artifact) as CSV
//!   --threads N: worker threads for the parallel stages (output is
//!                byte-identical at every N)
//!   --timings FILE: write a machine-readable stage-timing report
//!                   (the BENCH_pipeline.json format consumed by
//!                   `cargo xtask bench-check`)
//!   --obs FILE: enable structured tracing and write the JSONL trace
//!               (spans + metrics snapshot; verify with
//!               `cargo xtask obs-check FILE`)
//! environment:
//!   ROUTERGEO_SCALE   = tiny | small | tenth (default) | paper
//!   ROUTERGEO_SEED    = u64 (default 20170301)
//!   ROUTERGEO_THREADS = worker threads when --threads is not given
//!   ROUTERGEO_OBS     = trace file when --obs is not given
//! ```

use routergeo_bench::lab::time_stage;
use routergeo_bench::{experiments as exp, Lab, LabConfig, PipelineTimings};
use routergeo_core::report::TextTable;
use routergeo_cymru::BulkClient;
use std::path::PathBuf;

/// Output sink: prints tables and optionally mirrors them as CSV files.
struct Emitter {
    csv_dir: Option<PathBuf>,
    counter: usize,
}

impl Emitter {
    fn emit(&mut self, slug: &str, table: &TextTable) {
        println!("{}", table.render());
        if let Some(dir) = &self.csv_dir {
            self.counter += 1;
            let path = dir.join(format!("{:02}_{slug}.csv", self.counter));
            if let Err(e) = std::fs::write(&path, table.to_csv()) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
    }
}

fn main() {
    let mut csv_dir: Option<PathBuf> = None;
    let mut gt_out: Option<PathBuf> = None;
    let mut timings_out: Option<PathBuf> = None;
    let mut obs_out: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--csv" {
            match args.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--csv requires a directory argument");
                    std::process::exit(2);
                }
            }
        } else if arg == "--gt-out" {
            match args.next() {
                Some(file) => gt_out = Some(PathBuf::from(file)),
                None => {
                    eprintln!("--gt-out requires a file argument");
                    std::process::exit(2);
                }
            }
        } else if arg == "--timings" {
            match args.next() {
                Some(file) => timings_out = Some(PathBuf::from(file)),
                None => {
                    eprintln!("--timings requires a file argument");
                    std::process::exit(2);
                }
            }
        } else if arg == "--obs" {
            match args.next() {
                Some(file) => obs_out = Some(PathBuf::from(file)),
                None => {
                    eprintln!("--obs requires a file argument");
                    std::process::exit(2);
                }
            }
        } else if arg == "--threads" {
            match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => {
                    eprintln!("--threads requires a positive integer argument");
                    std::process::exit(2);
                }
            }
        } else {
            wanted.push(arg);
        }
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }
    if obs_out.is_none() {
        if let Ok(path) = std::env::var("ROUTERGEO_OBS") {
            if !path.is_empty() {
                obs_out = Some(PathBuf::from(path));
            }
        }
    }
    if obs_out.is_some() {
        routergeo_obs::enable();
    }
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    let want = |name: &str| wanted.iter().any(|w| w == name) || wanted.iter().any(|w| w == "all");
    let want_exactly = |name: &str| wanted.iter().any(|w| w == name);
    let mut out = Emitter {
        csv_dir,
        counter: 0,
    };

    let seed = std::env::var("ROUTERGEO_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_170_301u64);
    let mut config = LabConfig::from_env(seed);
    config.threads = threads;
    eprintln!(
        "building lab: seed={} scale={:?} threads={} (ROUTERGEO_SCALE to change)…",
        seed,
        config.scale,
        config.pool().threads()
    );
    let t0 = std::time::Instant::now();
    let (mut lab, mut stages) = Lab::build_timed(config);
    eprintln!(
        "lab ready in {:.1?}: {} interfaces, {} routers, Ark set {}, GT {} ({} DNS / {} RTT), overlap {}",
        t0.elapsed(),
        lab.world.interfaces.len(),
        lab.world.routers.len(),
        lab.ark.len(),
        lab.gt.len(),
        lab.gt
            .of_method(routergeo_core::GtMethod::DnsBased)
            .count(),
        lab.gt
            .of_method(routergeo_core::GtMethod::RttProximity)
            .count(),
        lab.gt.overlap.len(),
    );

    if let Some(path) = &gt_out {
        match std::fs::write(path, lab.gt.to_csv()) {
            Ok(()) => eprintln!(
                "wrote ground-truth dataset ({} addresses) to {}",
                lab.gt.len(),
                path.display()
            ),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }

    if want_exactly("stats") {
        out.emit("diag_world", &exp::world_stats(&lab));
        out.emit("diag_probes", &exp::probe_stats(&lab));
        out.emit("diag_gt_domains", &exp::gt_domain_stats(&lab));
    }
    if want("table1") {
        let (_, _, t) = time_stage(
            &mut stages,
            "table1",
            |_| lab.gt.len(),
            || exp::table1(&lab),
        );
        out.emit("table1", &t);
    }
    // The Ark analyses (coverage, consistency/Figure 1) share one
    // resolve-once view: every (IP, database) pair is answered exactly
    // once, in the `resolve` stage, and the analyses tally its columns.
    let needs_ark_view = want("coverage") || want("consistency") || want("fig1");
    let ark_view = needs_ark_view.then(|| {
        time_stage(
            &mut stages,
            "resolve",
            |v: &routergeo_core::ResolvedView| v.len() * v.db_count(),
            || exp::ark_view(&lab),
        )
    });
    if want("coverage") {
        let view = ark_view.as_ref().expect("ark view built");
        let (_, t) = time_stage(
            &mut stages,
            "coverage",
            |_| lab.ark.len() * lab.dbs.len(),
            || exp::ark_coverage_from(view),
        );
        out.emit("coverage", &t);
    }
    if want("consistency") || want("fig1") {
        let view = ark_view.as_ref().expect("ark view built");
        let (_, tables) = time_stage(
            &mut stages,
            "consistency",
            |_| lab.ark.len() * lab.dbs.len(),
            || exp::ark_consistency_from(view),
        );
        out.emit("consistency_country", &tables[0]);
        out.emit("fig1_summary", &tables[1]);
        if want_exactly("fig1") {
            for (i, t) in tables.iter().enumerate().skip(2) {
                out.emit(&format!("fig1_cdf_{i}"), t);
            }
        }
    }
    drop(ark_view);

    // The remaining §5.2 experiments share one accuracy report, fed by
    // one resolve-once view over the ground-truth addresses (the
    // `lookup` stage).
    let needs_accuracy = ["fig2", "fig3", "fig4", "fig5", "split", "recommend"]
        .iter()
        .any(|e| want(e));
    if needs_accuracy {
        let gt_view = time_stage(
            &mut stages,
            "lookup",
            |v: &routergeo_core::ResolvedView| v.len() * v.db_count(),
            || exp::gt_view(&lab),
        );
        let (report, tables) = time_stage(
            &mut stages,
            "accuracy",
            |_| lab.gt.len() * lab.dbs.len(),
            || exp::gt_accuracy_from(&lab, &gt_view),
        );
        if want("fig2") {
            out.emit("fig2_summary", &tables[0]);
            if want_exactly("fig2") {
                for (i, t) in tables.iter().enumerate().skip(1) {
                    out.emit(&format!("fig2_cdf_{i}"), t);
                }
            }
        }
        if want("fig3") {
            out.emit("fig3_rir", &exp::fig3(&report));
        }
        if want("fig4") {
            let (common_wrong, t) = exp::fig4_from(&lab, &gt_view, &report);
            out.emit("fig4_countries", &t);
            println!(
                "S5.2.2: the three registry-fed databases agree on the same wrong country \
                 for {common_wrong} ground-truth addresses\n"
            );
        }
        if want("fig5") {
            for (i, t) in exp::fig5(&report).into_iter().enumerate() {
                out.emit(&format!("fig5_db{i}"), &t);
            }
        }
        if want("split") {
            out.emit("split_method", &exp::method_split(&report));
        }
        if want("recommend") {
            println!("{}", exp::recommend(&report));
        }
    }

    if want("arin") {
        let (_, t) = exp::arin(&lab);
        out.emit("arin_case", &t);
    }
    if want("validate") {
        let (_, _, tables) = exp::validation(&lab);
        for (i, t) in tables.iter().enumerate() {
            out.emit(&format!("validate_{i}"), t);
        }
    }
    if want("method") {
        let (_, t) = exp::methodology(&lab);
        out.emit("methodology", &t);
    }

    // Extensions beyond the paper.
    if want("majority") {
        out.emit("ext_majority", &exp::majority(&lab));
    }
    if want("endpoints") {
        out.emit("ext_endpoints", &exp::endpoints(&lab));
    }
    if want("cbg") {
        out.emit("ext_cbg", &exp::cbg(&lab));
    }
    if want("hloc") {
        out.emit("ext_hloc", &exp::hloc(&lab));
    }
    if want("temporal") {
        let (drift, acc) = exp::temporal(&lab);
        out.emit("ext_temporal_drift", &drift);
        out.emit("ext_temporal_accuracy", &acc);
    }

    if obs_out.is_some() {
        // Exercise the resilient bulk-whois socket path so the trace
        // carries the cymru retry/degraded counters. Re-annotation is
        // idempotent: it recomputes the RIR tags the lab already holds.
        match lab.spawn_whois() {
            Ok(mut srv) => {
                let client = BulkClient::new(srv.addr());
                let ann = lab.annotate_rir_over_socket(&client);
                eprintln!(
                    "obs: re-annotated RIRs over socket ({} resolved, {} degraded)",
                    ann.resolved, ann.degraded
                );
                srv.shutdown();
            }
            Err(e) => eprintln!("obs: cannot spawn whois server: {e}"),
        }
    }
    if let Some(path) = &obs_out {
        match routergeo_obs::write_jsonl(path) {
            Ok(()) => eprintln!("wrote observability trace to {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = &timings_out {
        let report = PipelineTimings {
            schema: 1,
            seed,
            scale: lab.config.scale,
            threads: lab.pool.threads(),
            stages: std::mem::take(&mut stages),
        };
        match std::fs::write(path, report.to_json()) {
            Ok(()) => eprintln!(
                "wrote stage timings ({} stages, {:.1} ms total) to {}",
                report.stages.len(),
                report.total_wall_ms(),
                path.display()
            ),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
}

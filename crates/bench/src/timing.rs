//! Machine-readable pipeline timings (`BENCH_pipeline.json`) and the
//! bench crate's sanctioned wall-clock primitives.
//!
//! The `repro --timings out.json` flag serialises one
//! [`PipelineTimings`] per run: per-stage wall-clock milliseconds and
//! throughput, plus the run parameters (seed, scale, thread count) that
//! make the numbers comparable across machines and commits.
//! `cargo xtask bench-check` consumes the file and compares it against
//! the committed baseline, normalising away absolute machine speed.
//!
//! The format is deliberately line-oriented — one stage object per line —
//! so the std-only parser in `xtask` never needs a real JSON library.
//!
//! This module is also the only bench file allowed to call
//! `Instant::now()` directly (xtask rule RG008): every stage
//! measurement goes through [`time_stage`] or [`StageClock`], which
//! additionally emit a `stage.<name>` observability span when tracing
//! is enabled (see DESIGN.md §9).

use routergeo_world::Scale;
use std::time::Instant;

/// Wall-clock timing of one pipeline stage, for `BENCH_pipeline.json`.
#[derive(Debug, Clone)]
pub struct StageTiming {
    /// Stage name (stable identifier, used by `cargo xtask bench-check`).
    pub stage: String,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Items processed (addresses, traceroutes, blocks — per stage).
    pub items: usize,
}

impl StageTiming {
    /// Throughput in items per second (0 when the stage was too fast to
    /// time meaningfully).
    pub fn items_per_sec(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.items as f64 / (self.wall_ms / 1000.0)
        } else {
            0.0
        }
    }
}

/// A running stage measurement: the sanctioned way to time a region
/// that cannot be expressed as one closure (e.g. a stage assembled from
/// several intermediate values). Opens a `stage.<name>` span on start;
/// [`StageClock::finish`] closes it and appends the [`StageTiming`].
pub struct StageClock {
    stage: String,
    t0: Instant,
    span: routergeo_obs::SpanGuard,
}

impl StageClock {
    /// Start timing `stage`.
    pub fn start(stage: &str) -> StageClock {
        StageClock {
            stage: stage.to_string(),
            t0: Instant::now(),
            span: routergeo_obs::span(&format!("stage.{stage}"), Vec::new()),
        }
    }

    /// Stop the clock, close the span, and append the timing.
    pub fn finish(mut self, stages: &mut Vec<StageTiming>, items: usize) {
        self.span.attr("items", items);
        stages.push(StageTiming {
            stage: self.stage,
            wall_ms: self.t0.elapsed().as_secs_f64() * 1000.0,
            items,
        });
    }
}

/// Time one closure and append it to `stages` under `stage`.
pub fn time_stage<T>(
    stages: &mut Vec<StageTiming>,
    stage: &str,
    items: impl FnOnce(&T) -> usize,
    f: impl FnOnce() -> T,
) -> T {
    let clock = StageClock::start(stage);
    let out = f();
    clock.finish(stages, items(&out));
    out
}

/// A full timing report for one `repro` run.
#[derive(Debug, Clone)]
pub struct PipelineTimings {
    /// Format version; bump when the shape changes.
    pub schema: u32,
    /// Master seed of the run.
    pub seed: u64,
    /// World scale preset.
    pub scale: Scale,
    /// Worker threads the pool actually used.
    pub threads: usize,
    /// Per-stage timings, in pipeline order.
    pub stages: Vec<StageTiming>,
}

impl PipelineTimings {
    /// Total wall-clock milliseconds across all stages.
    pub fn total_wall_ms(&self) -> f64 {
        self.stages.iter().map(|s| s.wall_ms).sum()
    }

    /// Serialise as JSON with one stage object per line.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", self.schema));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!(
            "  \"scale\": \"{}\",\n",
            format!("{:?}", self.scale).to_lowercase()
        ));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"total_wall_ms\": {:.3},\n",
            self.total_wall_ms()
        ));
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            let comma = if i + 1 < self.stages.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"stage\": \"{}\", \"wall_ms\": {:.3}, \"items\": {}, \"items_per_sec\": {:.1}}}{}\n",
                s.stage,
                s.wall_ms,
                s.items,
                s.items_per_sec(),
                comma
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineTimings {
        PipelineTimings {
            schema: 1,
            seed: 20_170_301,
            scale: Scale::Tiny,
            threads: 2,
            stages: vec![
                StageTiming {
                    stage: "world".to_string(),
                    wall_ms: 12.5,
                    items: 1000,
                },
                StageTiming {
                    stage: "ark".to_string(),
                    wall_ms: 40.0,
                    items: 800,
                },
            ],
        }
    }

    #[test]
    fn json_is_line_oriented_with_one_stage_per_line() {
        let json = sample().to_json();
        let stage_lines: Vec<&str> = json.lines().filter(|l| l.contains("\"stage\":")).collect();
        assert_eq!(stage_lines.len(), 2);
        assert!(stage_lines[0].contains("\"world\""));
        assert!(stage_lines[0].contains("\"wall_ms\": 12.500"));
        assert!(stage_lines[1].contains("\"items_per_sec\": 20000.0"));
        assert!(json.contains("\"scale\": \"tiny\""));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"total_wall_ms\": 52.500"));
    }

    #[test]
    fn zero_duration_stage_reports_zero_throughput() {
        let s = StageTiming {
            stage: "noop".to_string(),
            wall_ms: 0.0,
            items: 99,
        };
        assert_eq!(s.items_per_sec(), 0.0);
    }
}

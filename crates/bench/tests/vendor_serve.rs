//! Vendor-image loadgen: the serve daemon swept across **real** lab
//! vendor databases encoded as file-backed RGDB v2.1 images.
//!
//! The corpus-driven loadgen (`cargo xtask serve-check`) exercises the
//! daemon over synthetic generations; this suite closes the remaining
//! headroom by serving the actual pipeline vendors — every generation
//! is a `Lab` vendor serialized with `write_v21`, loaded from disk via
//! `FileImage`, and hot-swapped into the live daemon in the paper's
//! vendor order while a client drives lookups.
//!
//! The tiny-scale sweep always runs. The tenth-scale sweep is opt-in
//! (`cargo xtask serve-check --vendor-images` runs it with `--ignored`)
//! so the default CI serve gate keeps its existing wall budget.

use std::net::Ipv4Addr;
use std::path::PathBuf;

use routergeo_bench::lab::{Lab, LabConfig};
use routergeo_db::GeoDatabase;
use routergeo_serve::daemon::ServeDaemon;
use routergeo_serve::live::ServeClient;
use routergeo_serve::protocol::{Request, Response};
use routergeo_world::Scale;

/// Per-vendor probe set: range boundaries plus the address just past
/// each range (a likely coverage hole), capped so the tenth-scale sweep
/// stays bounded.
fn probes(db: &routergeo_db::InMemoryDb, cap: usize) -> Vec<Ipv4Addr> {
    let mut out = Vec::new();
    for (start, end, _) in db.iter() {
        out.push(start);
        out.push(end);
        out.push(Ipv4Addr::from(u32::from(end).saturating_add(1)));
        if out.len() >= cap {
            break;
        }
    }
    out
}

/// Unique scratch path for one vendor image.
fn scratch_path(tag: &str, ix: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "routergeo-vendor-{}-{}-{}.rgdb",
        std::process::id(),
        tag,
        ix
    ))
}

/// Sweep one lab through the daemon: vendor 0 boots the daemon from a
/// file-backed v2.1 image, vendors 1.. hot-swap in from disk, and every
/// generation is differentially checked against its in-memory twin on
/// the probe set (coverage and country must agree exactly).
fn sweep(lab: &Lab, tag: &str, cap: usize) {
    let images = lab.vendor_images_v21();
    assert_eq!(images.len(), lab.dbs.len(), "one v2.1 image per vendor");
    let paths: Vec<PathBuf> = images
        .iter()
        .enumerate()
        .map(|(ix, image)| {
            let path = scratch_path(tag, ix);
            std::fs::write(&path, image).expect("vendor image written to disk");
            path
        })
        .collect();

    let daemon = ServeDaemon::spawn_file(&paths[0]).expect("daemon boots from a file-backed image");
    let mut client = ServeClient::connect(daemon.addr()).expect("client connects");
    let mut total_hits = 0usize;
    let mut total_misses = 0usize;
    for (ix, db) in lab.dbs.iter().enumerate() {
        if ix > 0 {
            let report = daemon
                .hot_swap_file(&paths[ix])
                .expect("file-backed vendor swap");
            assert!(report.drained, "vendor {ix} swap must drain");
        }
        for ip in probes(db, cap) {
            let expected = db.lookup(ip);
            let response = client
                .request(&Request::Lookup(ip))
                .expect("lookup round-trips");
            match (expected, response) {
                (Some(want), Response::Hit { record: got, .. }) => {
                    total_hits += 1;
                    assert_eq!(want.country, got.country, "vendor {ix} at {ip}");
                    assert_eq!(want.city, got.city, "vendor {ix} at {ip}");
                }
                (None, Response::Miss { .. }) => total_misses += 1,
                (want, got) => panic!("vendor {ix} at {ip}: coverage differs: {want:?} vs {got:?}"),
            }
        }
    }
    let swaps = u64::try_from(lab.dbs.len() - 1).expect("vendor count is tiny");
    let stats = daemon.stats();
    assert_eq!(stats.swaps, swaps, "every vendor swapped in once");
    assert_eq!(stats.errors, 0, "no serve-side errors: {stats:?}");
    assert!(total_hits > 0, "sweep must exercise covered space");
    assert!(total_misses > 0, "sweep must exercise coverage holes");
    drop(client);
    drop(daemon);
    for path in paths {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn tiny_vendor_v21_images_serve_from_disk() {
    let lab = Lab::tiny(20_170_301);
    sweep(&lab, "tiny", usize::MAX);
}

#[test]
#[ignore = "opt-in: tenth-scale vendor loadgen (cargo xtask serve-check --vendor-images)"]
fn tenth_scale_vendor_v21_images_serve_from_disk() {
    let lab = Lab::build(LabConfig::new(20_170_301, Scale::Tenth));
    sweep(&lab, "tenth", 30_000);
}

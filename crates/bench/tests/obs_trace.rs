//! End-to-end observability: `repro --obs` at Tiny scale emits a JSONL
//! trace that passes every structural invariant of
//! `routergeo_obs::check` (the library behind `cargo xtask obs-check`),
//! covers the pipeline stages, carries the cymru bulk-whois counters —
//! and renders byte-identical metric totals at 1 and 4 worker threads,
//! the same contract the rendered report already honours.

use routergeo_obs::check;
use std::path::PathBuf;
use std::process::Command;

/// Run the repro binary at Tiny scale with `--obs`, returning the trace.
fn traced_run(threads: usize, tag: &str) -> String {
    let path: PathBuf = std::env::temp_dir().join(format!(
        "routergeo_obs_{}_{tag}_{threads}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["table1", "coverage", "consistency", "fig2"])
        .arg("--obs")
        .arg(&path)
        .arg("--threads")
        .arg(threads.to_string())
        .env("ROUTERGEO_SCALE", "tiny")
        .env("ROUTERGEO_SEED", "20170301")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("repro spawns");
    assert!(status.success(), "repro exited with {status}");
    let text = std::fs::read_to_string(&path).expect("trace written");
    let _ = std::fs::remove_file(&path);
    text
}

/// The deterministic metric lines of a trace: counters and histograms,
/// in registration (= render) order. Span lines carry wall-clock times
/// and are excluded by construction.
fn metric_lines(trace: &str) -> String {
    trace
        .lines()
        .filter(|l| l.contains("\"type\":\"counter\"") || l.contains("\"type\":\"histogram\""))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn tiny_obs_trace_passes_check_and_metrics_match_across_thread_counts() {
    let serial = traced_run(1, "trace");
    let parallel = traced_run(4, "trace");

    for (label, trace) in [("1 thread", &serial), ("4 threads", &parallel)] {
        let report = check::parse(trace).unwrap_or_else(|e| panic!("{label}: {e}"));
        let violations = check::verify(&report);
        assert!(
            violations.is_empty(),
            "{label}: trace violates invariants: {violations:#?}"
        );

        // The trace must cover the pipeline: at least 5 distinct
        // `stage.*` spans (world, topology, ark, atlas_rtt,
        // ground_truth, vendor_dbs, plus the per-experiment stages).
        let stages: Vec<String> = report
            .span_names()
            .into_iter()
            .filter(|n| n.starts_with("stage."))
            .collect();
        assert!(
            stages.len() >= 5,
            "{label}: only {} stage spans: {stages:?}",
            stages.len()
        );

        // The cymru socket exercise must be visible: requests made, the
        // per-address identity populated, and the degraded counter
        // registered (zero against a healthy in-process server).
        let requested = report
            .counter("cymru.addrs_requested")
            .expect("cymru.addrs_requested counter");
        assert!(requested > 0, "{label}: no bulk-whois requests traced");
        assert!(report.counter("cymru.retries").is_some(), "{label}");
        assert!(report.counter("cymru.chunks").is_some(), "{label}");
        assert_eq!(
            report.counter("gt.rir_degraded"),
            Some(0),
            "{label}: healthy server must not degrade"
        );

        // The pool fan-out is traced with matching plan/run totals.
        let planned = report
            .counter("pool.shards_planned")
            .expect("pool.shards_planned counter");
        assert!(planned > 0, "{label}: no shards traced");
        assert_eq!(report.counter("pool.shards_run"), Some(planned));
    }

    // Metric totals — counters and histogram buckets — are rendered in
    // registration order and must be byte-identical at any thread
    // count; only span timings may differ between the two traces.
    assert_eq!(
        metric_lines(&serial),
        metric_lines(&parallel),
        "metric snapshot must not depend on the thread count"
    );
}

//! End-to-end graceful degradation: a ground-truth run whose RIR
//! annotation goes through a whois service failing ~50% of connections
//! must complete with a degraded-coverage line in the §5.2 report — not
//! an error, not a hang.

use routergeo_bench::experiments::fig3;
use routergeo_bench::lab::Lab;
use routergeo_core::accuracy::evaluate;
use routergeo_cymru::clock::TestClock;
use routergeo_cymru::{BulkClient, BulkConfig, RetryPolicy};
use routergeo_faultnet::{ChaosProxy, Fault, FaultPlan, SystemClock};
use std::time::Duration;

#[test]
fn ground_truth_run_survives_half_failing_whois_with_degraded_coverage_line() {
    let mut lab = Lab::tiny(4242);
    let mut srv = lab.spawn_whois().expect("spawn whois");

    // Two of every three connections die; with max_attempts = 2 a chunk
    // whose both attempts land on `Refuse` degrades, one that hits the
    // `PassThrough` slot resolves — a deterministically ~50%-failing
    // service.
    let plan = FaultPlan::cycle(vec![Fault::Refuse, Fault::Refuse, Fault::PassThrough]);
    let mut proxy = ChaosProxy::spawn(srv.addr(), plan, SystemClock::shared()).expect("proxy");

    let config = BulkConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        // Small chunks so the cycle plan spreads failures across many
        // chunks rather than failing or passing the batch wholesale.
        chunk_size: 10,
        retry: RetryPolicy {
            max_attempts: 2,
            base: Duration::from_millis(50),
            max: Duration::from_millis(200),
            jitter_seed: 11,
        },
        // Breaker off: we want sustained partial failure, not fail-fast.
        breaker_threshold: 0,
    };
    let (_clock, handle) = TestClock::shared();
    let client = BulkClient::with_config(proxy.addr(), config, handle);

    let ann = lab.annotate_rir_over_socket(&client);
    assert_eq!(ann.total, lab.gt.len());
    assert!(
        ann.is_degraded(),
        "a 50%-failing proxy should degrade some chunks: {ann:?}"
    );
    assert!(
        ann.resolved > 0,
        "pass-through slots should still resolve some chunks: {ann:?}"
    );
    assert_eq!(ann.resolved + ann.not_found + ann.degraded, ann.total);
    assert_eq!(lab.gt.degraded.len(), ann.degraded);

    // The run completes end to end: evaluation still works and Figure 3
    // carries the degraded-coverage line instead of erroring out.
    let report = evaluate(&lab.dbs, &lab.gt, 20);
    assert!(report.rir_coverage < 1.0);
    assert_eq!(report.degraded[0].total, ann.degraded);
    let f3 = fig3(&report);
    assert_eq!(f3.len(), 6, "5 RIR rows + the degraded line");
    let rendered = f3.render();
    assert!(
        rendered.contains("UNKNOWN (RIR coverage"),
        "missing degraded-coverage line:\n{rendered}"
    );

    // And Table 1 accounts for every address: RIR counts + degraded.
    let (dns, rtt, _) = routergeo_bench::experiments::table1(&lab);
    for row in [&dns, &rtt] {
        assert_eq!(row.per_rir.iter().sum::<usize>() + row.degraded, row.total);
    }

    proxy.shutdown();
    srv.shutdown();
}

#[test]
fn healthy_socket_annotation_leaves_report_unchanged() {
    let mut lab = Lab::tiny(4243);
    let before = lab
        .gt
        .table1_row(routergeo_core::groundtruth::GtMethod::DnsBased);
    let mut srv = lab.spawn_whois().expect("spawn whois");
    let ann = lab.annotate_rir_over_socket(&BulkClient::new(srv.addr()));
    assert_eq!(ann.degraded, 0);
    assert!((ann.coverage() - 1.0).abs() < 1e-9 || ann.not_found > 0);
    let after = lab
        .gt
        .table1_row(routergeo_core::groundtruth::GtMethod::DnsBased);
    assert_eq!(before, after, "healthy socket annotation changed Table 1");
    let report = evaluate(&lab.dbs, &lab.gt, 20);
    assert_eq!(report.rir_coverage, 1.0);
    assert_eq!(fig3(&report).len(), 5, "no degraded line on a healthy run");
    srv.shutdown();
}

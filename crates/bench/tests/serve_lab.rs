//! Differential check: a `routergeo-serve` daemon serving a lab
//! vendor's RGDB image must answer exactly what the in-memory range map
//! answers — same coverage, same country/region/city, coordinates equal
//! up to the wire format's micro-degree quantization.

use std::net::Ipv4Addr;

use routergeo_bench::lab::Lab;
use routergeo_db::GeoDatabase;
use routergeo_serve::daemon::ServeDaemon;
use routergeo_serve::live::ServeClient;
use routergeo_serve::protocol::{Request, Response};

/// Probe addresses: every range boundary (first/last address) of the
/// vendor plus a neighbour just past each range, which may fall in a
/// coverage hole.
fn probes(db: &routergeo_db::InMemoryDb) -> Vec<Ipv4Addr> {
    let mut out = Vec::new();
    for (start, end, _) in db.iter() {
        out.push(start);
        out.push(end);
        let next = u32::from(end).saturating_add(1);
        out.push(Ipv4Addr::from(next));
    }
    out
}

#[test]
fn daemon_agrees_with_in_memory_vendor() {
    let lab = Lab::tiny(20_170_301);
    let images = lab.vendor_images();
    assert_eq!(images.len(), lab.dbs.len(), "one image per vendor");

    // One vendor end-to-end is plenty: the codec is shared, only the
    // image contents differ.
    let db = &lab.dbs[0];
    let daemon = ServeDaemon::spawn(images[0].clone()).expect("daemon spawns");
    let mut client = ServeClient::connect(daemon.addr()).expect("client connects");

    let mut hits = 0usize;
    let mut misses = 0usize;
    for ip in probes(db) {
        let expected = db.lookup(ip);
        let response = client
            .request(&Request::Lookup(ip))
            .expect("lookup round-trips");
        match (expected, response) {
            (Some(want), Response::Hit { record: got, .. }) => {
                hits += 1;
                assert_eq!(want.country, got.country, "{ip}");
                assert_eq!(want.region, got.region, "{ip}");
                assert_eq!(want.city, got.city, "{ip}");
                assert_eq!(want.granularity, got.granularity, "{ip}");
                match (want.coord, got.coord) {
                    (None, None) => {}
                    (Some(w), Some(g)) => {
                        assert!(
                            (w.lat() - g.lat()).abs() < 1e-5 && (w.lon() - g.lon()).abs() < 1e-5,
                            "{ip}: coordinate drifted beyond micro-degree quantization"
                        );
                    }
                    (w, g) => panic!("{ip}: coordinate presence differs: {w:?} vs {g:?}"),
                }
            }
            (None, Response::Miss { .. }) => misses += 1,
            (want, got) => panic!("{ip}: coverage differs: {want:?} vs {got:?}"),
        }
    }
    assert!(hits > 0, "probe set must exercise covered space");
    assert!(misses > 0, "probe set must exercise coverage holes");
    drop(client);
}

//! Deterministic hostname generation — the world's reverse DNS.
//!
//! Each operator follows one convention ([`HostnameStyle`]); the location
//! token always sits in the third label from the left, matching the shape
//! of the paper's example `ae-5.r23.dllstx09.us.bb.gin.ntt.net` (interface,
//! router, location+index, …, domain). Whether an interface has rDNS at
//! all is a per-interface deterministic Bernoulli draw against the
//! operator's `rdns_coverage`.

use routergeo_world::ases::HostnameStyle;
use routergeo_world::{InterfaceId, World};

/// Stateless deterministic hash for per-interface decisions.
fn mix(seed: u64, ip: u32, salt: u64) -> u64 {
    let mut z = seed ^ (ip as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const IF_PREFIXES: [&str; 6] = ["ae", "xe", "te", "et", "ge", "hu"];

/// The interface-name label, e.g. `ae-5` or `xe-0-1`.
fn if_label(h: u64) -> String {
    let prefix = IF_PREFIXES[(h % 6) as usize];
    if h & 0x40 == 0 {
        format!("{prefix}-{}", (h >> 8) % 12)
    } else {
        format!("{prefix}-{}-{}", (h >> 8) % 4, (h >> 16) % 8)
    }
}

/// Reverse-DNS lookup against the synthetic world: the hostname of the
/// interface, or `None` when the operator publishes no record for it.
///
/// Deterministic: the same world and interface always yield the same name.
pub fn rdns(world: &World, iface: InterfaceId) -> Option<String> {
    let interface = world.interface(iface);
    let router = world.router(interface.router);
    let pop = world.pop(router.pop);
    let op = world.operator(pop.op);
    let domain = op.domain.as_deref()?;
    if op.style == HostnameStyle::None {
        return None;
    }

    let ip = u32::from(interface.ip);
    let h = mix(world.config.seed, ip, 0xD05);
    // Coverage draw: uses the /24 so whole blocks tend to be covered or
    // not, like real operators' zones.
    let cov = mix(world.config.seed, ip >> 8, 0xC0F);
    if (cov % 10_000) as f64 >= op.rdns_coverage * 10_000.0 {
        return None;
    }

    let city = world.city(pop.city);
    let rtr_no = router.id.0 % 64;
    let site = (pop.id.0 % 9) + 1;
    let label = match op.style {
        HostnameStyle::Iata => format!(
            "{}.r{:02}.{}{:02}.{}",
            if_label(h),
            rtr_no,
            city.airport.to_ascii_lowercase(),
            site,
            domain
        ),
        HostnameStyle::Clli => {
            let cc = city.country.as_str().to_ascii_lowercase();
            let clli =
                routergeo_world::names::clli_code(&city.airport, &city.name, city.country.as_str());
            format!(
                "{}.r{:02}.{}{:02}.{}.bb.{}",
                if_label(h),
                rtr_no,
                clli,
                site,
                cc,
                domain
            )
        }
        HostnameStyle::CityName => format!(
            "{}.core{}.{}{}.{}",
            if_label(h),
            rtr_no % 8 + 1,
            city.name.to_ascii_lowercase(),
            site,
            domain
        ),
        HostnameStyle::Opaque => format!(
            "host-{:x}.{}",
            mix(world.config.seed, ip, 0x0FACE) & 0xFFFF_FFFF,
            domain
        ),
        HostnameStyle::None => return None,
    };
    Some(label)
}

/// The domain suffix of a hostname (everything after the third label),
/// used to route hostnames to per-domain rules. Falls back to the last two
/// labels for short names.
pub fn domain_of(hostname: &str) -> &str {
    let labels: Vec<&str> = hostname.split('.').collect();
    if labels.len() > 3 {
        let skip: usize = labels[..3].iter().map(|l| l.len() + 1).sum();
        &hostname[skip..]
    } else if labels.len() >= 2 {
        let skip: usize = labels[..labels.len() - 2].iter().map(|l| l.len() + 1).sum();
        &hostname[skip..]
    } else {
        hostname
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_world::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::tiny(61))
    }

    #[test]
    fn rdns_is_deterministic() {
        let w = world();
        for i in (0..w.interfaces.len()).step_by(37) {
            let id = InterfaceId::from_index(i);
            assert_eq!(rdns(&w, id), rdns(&w, id));
        }
    }

    #[test]
    fn gt_domain_hostnames_carry_their_domain() {
        let w = world();
        let cogent = w.operator_by_name("cogentco").unwrap();
        let mut seen = 0;
        for id in w.interfaces_of_operator(cogent) {
            if let Some(name) = rdns(&w, id) {
                assert!(name.ends_with(".cogentco.com"), "{name}");
                seen += 1;
            }
        }
        assert!(seen > 0, "cogent has no rDNS at all");
    }

    #[test]
    fn ntt_style_has_clli_and_country() {
        let w = world();
        let ntt = w.operator_by_name("ntt").unwrap();
        let id = w.interfaces_of_operator(ntt)[0];
        // Find any covered interface.
        let name = w
            .interfaces_of_operator(ntt)
            .into_iter()
            .find_map(|i| rdns(&w, i))
            .unwrap_or_else(|| panic!("no ntt rDNS for {id:?}"));
        // Shape: if.rNN.cccccc##.cc.bb.ntt.net
        let labels: Vec<&str> = name.split('.').collect();
        assert!(name.ends_with(".bb.ntt.net"), "{name}");
        assert!(labels[1].starts_with('r'));
        assert_eq!(labels[3].len(), 2, "{name}");
    }

    #[test]
    fn location_token_matches_interface_city() {
        let w = world();
        let cogent = w.operator_by_name("cogentco").unwrap();
        for id in w.interfaces_of_operator(cogent) {
            if let Some(name) = rdns(&w, id) {
                let iface = w.interface(id);
                let (city_id, _) = w.true_location(iface.ip).unwrap();
                let airport = w.city(city_id).airport.to_ascii_lowercase();
                let token = name.split('.').nth(2).unwrap();
                assert!(
                    token.starts_with(&airport),
                    "token {token} vs airport {airport} in {name}"
                );
            }
        }
    }

    #[test]
    fn coverage_is_partial_for_low_coverage_operators() {
        let w = world();
        // Stub operators have 0.35 coverage or no domain; across all stubs
        // a good share of interfaces must lack rDNS.
        let mut with = 0usize;
        let mut without = 0usize;
        for (i, _) in w.interfaces.iter().enumerate().step_by(5) {
            match rdns(&w, InterfaceId::from_index(i)) {
                Some(_) => with += 1,
                None => without += 1,
            }
        }
        assert!(with > 0 && without > 0, "with={with} without={without}");
    }

    #[test]
    fn domain_of_extracts_suffix() {
        assert_eq!(
            domain_of("ae-5.r23.dllstx09.us.bb.gin.ntt.net"),
            "us.bb.gin.ntt.net"
        );
        assert_eq!(domain_of("a.b.c.example.com"), "example.com");
        assert_eq!(domain_of("a.b"), "a.b");
        assert_eq!(domain_of("localhost"), "localhost");
    }

    #[test]
    fn opaque_hostnames_do_not_leak_city_tokens() {
        let w = world();
        let op = w
            .operators
            .iter()
            .find(|o| o.style == HostnameStyle::Opaque && o.domain.is_some())
            .expect("some opaque operator");
        for id in w.interfaces_of_operator(op.id).into_iter().take(50) {
            if let Some(name) = rdns(&w, id) {
                let iface = w.interface(id);
                let (city_id, _) = w.true_location(iface.ip).unwrap();
                let city = w.city(city_id);
                assert!(!name.contains(&city.name.to_ascii_lowercase()));
                assert!(!name.contains(&city.airport.to_ascii_lowercase()));
            }
        }
    }
}

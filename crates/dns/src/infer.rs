//! Rule inference — how DRoP built rules for 1,398 domains (§2.3.1).
//!
//! The paper only *uses* the seven operator-confirmed rule sets, but the
//! underlying system inferred rules automatically: collect hostnames with
//! independently known locations (e.g. from RTT proximity), try every
//! (label position, hint kind) combination against the dictionary, and
//! adopt the combinations that are both frequent and precise. This module
//! implements that inference loop, so the harness can *learn* the rules it
//! elsewhere receives as ground truth — and measure how well learned rules
//! approach the operator-confirmed ones.

use crate::dict::HintDictionary;
use crate::rules::{DomainRule, HintKind};
use routergeo_geo::Coordinate;
use routergeo_world::World;
use std::collections::HashMap;

/// One training sample: a hostname and an independently known location of
/// the address behind it.
#[derive(Debug, Clone)]
pub struct TrainingSample {
    /// The rDNS hostname.
    pub hostname: String,
    /// Known location (city accuracy).
    pub location: Coordinate,
}

/// Inference parameters.
#[derive(Debug, Clone)]
pub struct InferenceConfig {
    /// Minimum samples per (domain, position, kind) candidate.
    pub min_support: usize,
    /// Minimum fraction of decodes agreeing with the training location.
    pub min_precision: f64,
    /// Agreement radius between a decoded city and a training location.
    pub agree_km: f64,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            min_support: 10,
            min_precision: 0.8,
            agree_km: 60.0,
        }
    }
}

/// Evidence accumulated for one rule candidate.
#[derive(Debug, Default, Clone)]
struct Tally {
    attempts: usize,
    hits: usize,
}

/// An inferred rule with its supporting evidence.
#[derive(Debug, Clone)]
pub struct InferredRule {
    /// The rule itself, usable by [`crate::rules::DomainRule::decode`].
    pub rule: DomainRule,
    /// Samples whose label decoded to *some* dictionary city.
    pub support: usize,
    /// Fraction of decodes within the agreement radius.
    pub precision: f64,
}

/// Domain key: the last two labels of a hostname (`cogentco.com`).
fn domain_key(hostname: &str) -> Option<String> {
    let labels: Vec<&str> = hostname.split('.').collect();
    if labels.len() < 3 {
        return None;
    }
    Some(labels[labels.len() - 2..].join("."))
}

/// Infer per-domain decoding rules from training samples.
pub fn infer_rules(
    world: &World,
    samples: &[TrainingSample],
    config: &InferenceConfig,
) -> Vec<InferredRule> {
    let dict = HintDictionary::build(world);
    // (domain, label index, kind) → tally.
    let mut tallies: HashMap<(String, usize, u8), Tally> = HashMap::new();
    let kinds = [HintKind::Airport, HintKind::Clli, HintKind::CityName];

    for sample in samples {
        let Some(domain) = domain_key(&sample.hostname) else {
            continue;
        };
        let labels: Vec<&str> = sample.hostname.split('.').collect();
        // Never treat the registered domain itself as a location label.
        let scan = labels.len().saturating_sub(2);
        for idx in 0..scan {
            for (k, kind) in kinds.iter().enumerate() {
                let rule = DomainRule {
                    domain_suffix: domain.clone(),
                    kind: *kind,
                    label_index: idx,
                };
                let Some(city) = rule.decode(&sample.hostname, &dict) else {
                    continue;
                };
                let tally = tallies.entry((domain.clone(), idx, k as u8)).or_default();
                tally.attempts += 1;
                let coord = world.city(city).coord;
                if coord.distance_km(&sample.location) <= config.agree_km {
                    tally.hits += 1;
                }
            }
        }
    }

    // Per domain: keep the best candidate that clears both thresholds.
    let mut best: HashMap<String, InferredRule> = HashMap::new();
    for ((domain, idx, k), tally) in tallies {
        if tally.attempts < config.min_support {
            continue;
        }
        let precision = tally.hits as f64 / tally.attempts as f64;
        if precision < config.min_precision {
            continue;
        }
        let kind = kinds[k as usize];
        let candidate = InferredRule {
            rule: DomainRule {
                domain_suffix: domain.clone(),
                kind,
                label_index: idx,
            },
            support: tally.attempts,
            precision,
        };
        match best.get(&domain) {
            Some(existing)
                if (existing.precision, existing.support)
                    >= (candidate.precision, candidate.support) => {}
            _ => {
                best.insert(domain, candidate);
            }
        }
    }
    let mut out: Vec<InferredRule> = best.into_values().collect();
    out.sort_by(|a, b| a.rule.domain_suffix.cmp(&b.rule.domain_suffix));
    out
}

/// Build training samples from the world itself: interfaces with rDNS
/// whose location is taken from an external source — here the oracle
/// blurred to city centres, standing in for RTT-proximity locations.
pub fn training_from_world(world: &World, stride: usize) -> Vec<TrainingSample> {
    let mut out = Vec::new();
    for (i, iface) in world.interfaces.iter().enumerate().step_by(stride.max(1)) {
        let id = routergeo_world::InterfaceId::from_index(i);
        let Some(hostname) = crate::hostname::rdns(world, id) else {
            continue;
        };
        let Some((city, _)) = world.true_location(iface.ip) else {
            continue;
        };
        out.push(TrainingSample {
            hostname,
            location: world.city(city).coord,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleEngine;
    use routergeo_world::{World, WorldConfig};

    fn setup() -> (World, Vec<InferredRule>) {
        let w = World::generate(WorldConfig::tiny(411));
        let samples = training_from_world(&w, 1);
        let rules = infer_rules(&w, &samples, &InferenceConfig::default());
        (w, rules)
    }

    #[test]
    fn inference_recovers_the_gt_domains() {
        let (_, rules) = setup();
        let domains: Vec<&str> = rules
            .iter()
            .map(|r| r.rule.domain_suffix.as_str())
            .collect();
        for d in ["cogentco.com", "ntt.net", "pnap.net", "seabone.net"] {
            assert!(domains.contains(&d), "missing {d}; got {domains:?}");
        }
    }

    #[test]
    fn inferred_rules_match_the_authoritative_shape() {
        let (_, rules) = setup();
        for r in &rules {
            // The world's hostname grammar puts the location token at
            // label 2 for every convention.
            if ["cogentco.com", "ntt.net", "pnap.net", "seabone.net"]
                .contains(&r.rule.domain_suffix.as_str())
            {
                assert_eq!(r.rule.label_index, 2, "{r:?}");
                assert!(r.precision > 0.9, "{r:?}");
            }
        }
    }

    #[test]
    fn opaque_domains_yield_no_rules() {
        let (_, rules) = setup();
        for r in &rules {
            assert_ne!(
                r.rule.domain_suffix, "gtt.net",
                "opaque domain learned a rule"
            );
        }
    }

    #[test]
    fn inferred_rules_decode_like_authoritative_ones() {
        let (w, rules) = setup();
        let engine = RuleEngine::with_gt_rules(&w);
        let dict = HintDictionary::build(&w);
        let cogent_rule = rules
            .iter()
            .find(|r| r.rule.domain_suffix == "cogentco.com")
            .expect("cogent rule inferred");
        let cogent = w.operator_by_name("cogentco").unwrap();
        let mut agree = 0usize;
        let mut total = 0usize;
        for id in w.interfaces_of_operator(cogent) {
            let Some(name) = crate::hostname::rdns(&w, id) else {
                continue;
            };
            let auth = engine.decode(&name);
            let inferred = cogent_rule.rule.decode(&name, &dict);
            if auth.is_some() || inferred.is_some() {
                total += 1;
                if auth == inferred {
                    agree += 1;
                }
            }
        }
        assert!(total > 50);
        assert!(
            agree * 100 >= total * 95,
            "inferred rule diverges: {agree}/{total}"
        );
    }

    #[test]
    fn noisy_training_data_still_converges() {
        // Corrupt 15% of training locations; precision thresholding should
        // still admit the true rules.
        let w = World::generate(WorldConfig::tiny(412));
        let mut samples = training_from_world(&w, 1);
        let far = Coordinate::new(-45.0, -170.0).unwrap();
        for (i, s) in samples.iter_mut().enumerate() {
            if i % 7 == 0 {
                s.location = far;
            }
        }
        let rules = infer_rules(&w, &samples, &InferenceConfig::default());
        assert!(rules.iter().any(|r| r.rule.domain_suffix == "cogentco.com"));
    }

    #[test]
    fn insufficient_support_learns_nothing() {
        let w = World::generate(WorldConfig::tiny(413));
        let samples = training_from_world(&w, 1);
        let config = InferenceConfig {
            min_support: samples.len() + 1,
            ..Default::default()
        };
        assert!(infer_rules(&w, &samples, &config).is_empty());
    }
}

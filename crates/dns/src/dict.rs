//! The hint dictionary: location token → city.
//!
//! DRoP's dictionary maps location strings (airport codes, CLLI codes,
//! city names) to physical coordinates. Ours is built from the world's
//! cities, so it is complete and correct by construction — the errors the
//! evaluation measures then come from *stale hostnames* and *rule-less
//! domains*, the same sources the paper identifies, not from dictionary
//! gaps.

use routergeo_world::names::clli_code;
use routergeo_world::{CityId, World};
use std::collections::HashMap;

/// Location-token dictionary over one world's cities.
#[derive(Debug, Clone)]
pub struct HintDictionary {
    by_airport: HashMap<String, CityId>,
    by_clli: HashMap<String, CityId>,
    by_name: HashMap<String, CityId>,
}

impl HintDictionary {
    /// Build the dictionary from the world's cities.
    pub fn build(world: &World) -> HintDictionary {
        let mut by_airport = HashMap::new();
        let mut by_clli = HashMap::new();
        let mut by_name = HashMap::new();
        for city in &world.cities {
            by_airport.insert(city.airport.to_ascii_lowercase(), city.id);
            by_clli.insert(
                clli_code(&city.airport, &city.name, city.country.as_str()),
                city.id,
            );
            // City names may collide across countries; first-in wins,
            // mirroring the ambiguity real dictionaries face (our
            // generator keeps names world-unique, so this is exact).
            by_name
                .entry(city.name.to_ascii_lowercase())
                .or_insert(city.id);
        }
        HintDictionary {
            by_airport,
            by_clli,
            by_name,
        }
    }

    /// Look up an airport-style token (case-insensitive).
    pub fn airport(&self, token: &str) -> Option<CityId> {
        self.by_airport.get(&token.to_ascii_lowercase()).copied()
    }

    /// Look up a CLLI-style token (six letters, lower-case).
    pub fn clli(&self, token: &str) -> Option<CityId> {
        self.by_clli.get(token).copied()
    }

    /// Look up a city-name token (case-insensitive).
    pub fn city_name(&self, token: &str) -> Option<CityId> {
        self.by_name.get(&token.to_ascii_lowercase()).copied()
    }

    /// Number of airport entries (== number of cities).
    pub fn len(&self) -> usize {
        self.by_airport.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.by_airport.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_world::{World, WorldConfig};

    #[test]
    fn dictionary_covers_every_city() {
        let w = World::generate(WorldConfig::tiny(71));
        let d = HintDictionary::build(&w);
        assert_eq!(d.len(), w.cities.len());
        for city in &w.cities {
            assert_eq!(d.airport(&city.airport), Some(city.id));
            assert_eq!(d.airport(&city.airport.to_ascii_lowercase()), Some(city.id));
            assert_eq!(d.city_name(&city.name), Some(city.id));
            assert_eq!(
                d.clli(&clli_code(&city.airport, &city.name, city.country.as_str())),
                Some(city.id)
            );
        }
    }

    #[test]
    fn unknown_tokens_miss() {
        let w = World::generate(WorldConfig::tiny(72));
        let d = HintDictionary::build(&w);
        assert_eq!(d.airport("qqq"), None);
        assert_eq!(d.city_name("atlantis"), None);
        assert_eq!(d.clli("zzzzzz"), None);
    }
}

//! DNS-based router geolocation: the DRoP substrate (§2.3.1).
//!
//! Huffaker et al.'s DRoP geolocates routers by decoding location hints in
//! their hostnames — airport codes, CLLI codes, city names — using a hint
//! dictionary and domain-specific rules. The paper builds its DNS ground
//! truth from the seven domains whose rules were confirmed by the
//! operators themselves.
//!
//! This crate implements the whole pipeline against the synthetic world:
//!
//! * [`hostname`] — the generative side: deterministic per-interface
//!   hostnames following each operator's convention ([`hostname::rdns`]
//!   plays the role of a reverse-DNS lookup).
//! * [`dict`] — the hint dictionary: location token → city, built from the
//!   world's cities (airport codes, CLLI codes, city names).
//! * [`rules`] — the decoding side: per-domain rules ([`rules::RuleEngine`],
//!   the DRoP analog, using operator-confirmed rules for the seven
//!   ground-truth domains) plus a greedy generic decoder
//!   ([`rules::GenericDecoder`]) modeling a vendor that mines hints from
//!   *any* domain without authoritative rules.
//! * [`churn`] — hostname churn over time (§3.1): interfaces are
//!   reassigned, renamed, or lose their rDNS, sometimes carrying stale
//!   location hints.
//! * [`infer`] — DRoP's rule *inference*: learn per-domain rules from
//!   hostnames with independently known locations, the process that built
//!   the 1,398-domain rule base the paper draws its seven confirmed
//!   domains from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod dict;
pub mod hostname;
pub mod infer;
pub mod rules;

pub use churn::{ChurnConfig, ChurnModel, ChurnOutcome};
pub use dict::HintDictionary;
pub use hostname::rdns;
pub use infer::{infer_rules, InferenceConfig, InferredRule, TrainingSample};
pub use rules::{DomainRule, GenericDecoder, HintKind, RuleEngine};

//! Hostname churn over time (§3.1).
//!
//! Between May 2016 and September 2017 the paper observed, over its 11,857
//! DNS-based ground-truth addresses: 69.1% kept their hostnames, 24% got
//! different hostnames, 6.9% lost their rDNS records. Of the changed
//! hostnames, 67.7% still decoded to the same location, 30.8% decoded to a
//! *different* location (the address was reassigned to a router somewhere
//! else — the paper's `dllstx09` → `miamfl02` example), and 1.5% no longer
//! matched any rule.
//!
//! [`ChurnModel`] applies that process to a synthetic hostname: it samples
//! an outcome per interface and rewrites the location token accordingly,
//! so the §3.1 validation analysis can run unchanged.

use crate::hostname;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use routergeo_world::ases::HostnameStyle;
use routergeo_world::names::clli_code;
use routergeo_world::{CityId, InterfaceId, World};

/// Churn probabilities. Defaults reproduce §3.1's observed 16-month rates.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// RNG seed for churn decisions.
    pub seed: u64,
    /// P(hostname unchanged).
    pub p_same: f64,
    /// P(hostname changed) — split below.
    pub p_changed: f64,
    /// Among changed: P(still decodes to the same location).
    pub p_changed_same_location: f64,
    /// Among changed: P(decodes to a different location).
    pub p_changed_moved: f64,
    // Remaining changed mass: no decodable hint any more.
    // P(rDNS record gone) is 1 - p_same - p_changed.
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            seed: 0xC4A2,
            p_same: 0.691,
            p_changed: 0.24,
            p_changed_same_location: 0.677,
            p_changed_moved: 0.308,
        }
    }
}

/// What happened to one interface's hostname after the churn interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnOutcome {
    /// Same hostname as before.
    Same(String),
    /// New hostname, same location token (renamed/renumbered in place).
    RenamedSameLocation(String),
    /// New hostname whose location token points at a different city —
    /// the address was reassigned to a router elsewhere.
    Moved(String, CityId),
    /// New hostname with no decodable location hint.
    HintLost(String),
    /// rDNS record disappeared.
    Gone,
}

impl ChurnOutcome {
    /// The hostname after churn, if one still exists.
    pub fn hostname(&self) -> Option<&str> {
        match self {
            ChurnOutcome::Same(h)
            | ChurnOutcome::RenamedSameLocation(h)
            | ChurnOutcome::Moved(h, _)
            | ChurnOutcome::HintLost(h) => Some(h),
            ChurnOutcome::Gone => None,
        }
    }
}

/// Applies hostname churn to a world's interfaces.
pub struct ChurnModel<'w> {
    world: &'w World,
    config: ChurnConfig,
}

impl<'w> ChurnModel<'w> {
    /// New model over a world.
    pub fn new(world: &'w World, config: ChurnConfig) -> Self {
        ChurnModel { world, config }
    }

    /// Evolve one interface's hostname across the churn interval.
    /// Deterministic per (seed, interface). Interfaces without rDNS stay
    /// [`ChurnOutcome::Gone`].
    pub fn evolve(&self, iface: InterfaceId) -> ChurnOutcome {
        let Some(original) = hostname::rdns(self.world, iface) else {
            return ChurnOutcome::Gone;
        };
        let ip = u32::from(self.world.interface(iface).ip);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ (ip as u64) << 16);

        let roll: f64 = rng.gen();
        if roll < self.config.p_same {
            return ChurnOutcome::Same(original);
        }
        if roll < self.config.p_same + self.config.p_changed {
            // Hostname changed: decide what the new name encodes.
            let sub: f64 = rng.gen();
            if sub < self.config.p_changed_same_location {
                return ChurnOutcome::RenamedSameLocation(rename_in_place(&original, &mut rng));
            }
            if sub < self.config.p_changed_same_location + self.config.p_changed_moved {
                let (new_name, new_city) = self.move_hostname(iface, &original, &mut rng);
                return ChurnOutcome::Moved(new_name, new_city);
            }
            return ChurnOutcome::HintLost(hint_less(&original, &mut rng));
        }
        ChurnOutcome::Gone
    }

    /// Rewrite the hostname's location token to a different city of the
    /// same operator's footprint (address reassigned to another PoP).
    fn move_hostname(
        &self,
        iface: InterfaceId,
        original: &str,
        rng: &mut StdRng,
    ) -> (String, CityId) {
        let w = self.world;
        let router = w.router(w.interface(iface).router);
        let pop = w.pop(router.pop);
        let op = w.operator(pop.op);
        // Pick a different presence city.
        let choices: Vec<CityId> = op
            .presence
            .iter()
            .copied()
            .filter(|c| *c != pop.city)
            .collect();
        let new_city_id = if choices.is_empty() {
            pop.city
        } else {
            choices[rng.gen_range(0..choices.len())]
        };
        let city = w.city(new_city_id);
        let site = rng.gen_range(1..=9u32);
        let mut labels: Vec<String> = original.split('.').map(|s| s.to_string()).collect();
        if labels.len() > 2 {
            labels[2] = match op.style {
                HostnameStyle::Iata => {
                    format!("{}{:02}", city.airport.to_ascii_lowercase(), site)
                }
                HostnameStyle::Clli => format!(
                    "{}{:02}",
                    clli_code(&city.airport, &city.name, city.country.as_str()),
                    site
                ),
                _ => format!("{}{}", city.name.to_ascii_lowercase(), site),
            };
            // CLLI names also carry the country label right after.
            if op.style == HostnameStyle::Clli && labels.len() > 3 {
                labels[3] = city.country.as_str().to_ascii_lowercase();
            }
        }
        (labels.join("."), new_city_id)
    }
}

/// New router/interface labels, same location token.
fn rename_in_place(original: &str, rng: &mut StdRng) -> String {
    let mut labels: Vec<String> = original.split('.').map(|s| s.to_string()).collect();
    if labels.len() > 1 {
        labels[1] = format!("r{:02}", rng.gen_range(0..64));
    }
    if !labels.is_empty() {
        labels[0] = format!("ae-{}", rng.gen_range(0..12));
    }
    labels.join(".")
}

/// Replace the location label with an opaque token.
fn hint_less(original: &str, rng: &mut StdRng) -> String {
    let mut labels: Vec<String> = original.split('.').map(|s| s.to_string()).collect();
    if labels.len() > 2 {
        labels[2] = format!("pe{:04x}", rng.gen_range(0..0xFFFFu32));
    }
    labels.join(".")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleEngine;
    use routergeo_world::{World, WorldConfig};

    fn gt_interfaces(w: &World) -> Vec<InterfaceId> {
        let mut out = Vec::new();
        for spec in routergeo_world::ases::GT_OPERATORS {
            let op = w.operator_by_name(spec.name).unwrap();
            out.extend(w.interfaces_of_operator(op));
        }
        out
    }

    #[test]
    fn outcome_rates_match_config() {
        let w = World::generate(WorldConfig::small(91));
        let model = ChurnModel::new(&w, ChurnConfig::default());
        let ifaces: Vec<_> = gt_interfaces(&w)
            .into_iter()
            .filter(|i| hostname::rdns(&w, *i).is_some())
            .collect();
        assert!(ifaces.len() > 500, "need interfaces: {}", ifaces.len());
        let mut same = 0usize;
        let mut changed = 0usize;
        let mut gone = 0usize;
        for id in &ifaces {
            match model.evolve(*id) {
                ChurnOutcome::Same(_) => same += 1,
                ChurnOutcome::Gone => gone += 1,
                _ => changed += 1,
            }
        }
        let n = ifaces.len() as f64;
        assert!((same as f64 / n - 0.691).abs() < 0.05, "same {same}/{n}");
        assert!(
            (changed as f64 / n - 0.24).abs() < 0.05,
            "changed {changed}"
        );
        assert!((gone as f64 / n - 0.069).abs() < 0.04, "gone {gone}");
    }

    #[test]
    fn moved_hostnames_decode_to_the_new_city() {
        let w = World::generate(WorldConfig::tiny(92));
        let engine = RuleEngine::with_gt_rules(&w);
        let model = ChurnModel::new(&w, ChurnConfig::default());
        let mut checked = 0;
        for id in gt_interfaces(&w) {
            if let ChurnOutcome::Moved(name, city) = model.evolve(id) {
                if let Some(decoded) = engine.decode(&name) {
                    assert_eq!(decoded, city, "{name}");
                    checked += 1;
                }
            }
        }
        assert!(checked > 5, "too few moved outcomes decoded: {checked}");
    }

    #[test]
    fn renamed_hostnames_keep_their_location() {
        let w = World::generate(WorldConfig::tiny(93));
        let engine = RuleEngine::with_gt_rules(&w);
        let model = ChurnModel::new(&w, ChurnConfig::default());
        let mut checked = 0;
        for id in gt_interfaces(&w) {
            let before = match hostname::rdns(&w, id).map(|h| engine.decode(&h)) {
                Some(Some(c)) => c,
                _ => continue,
            };
            if let ChurnOutcome::RenamedSameLocation(name) = model.evolve(id) {
                assert_eq!(engine.decode(&name), Some(before), "{name}");
                checked += 1;
            }
        }
        assert!(checked > 5, "too few renames: {checked}");
    }

    #[test]
    fn hint_lost_hostnames_do_not_decode() {
        let w = World::generate(WorldConfig::tiny(94));
        let engine = RuleEngine::with_gt_rules(&w);
        let model = ChurnModel::new(&w, ChurnConfig::default());
        for id in gt_interfaces(&w) {
            if let ChurnOutcome::HintLost(name) = model.evolve(id) {
                assert_eq!(engine.decode(&name), None, "{name}");
            }
        }
    }

    #[test]
    fn evolve_is_deterministic() {
        let w = World::generate(WorldConfig::tiny(95));
        let model = ChurnModel::new(&w, ChurnConfig::default());
        for id in gt_interfaces(&w).into_iter().take(100) {
            assert_eq!(model.evolve(id), model.evolve(id));
        }
    }

    #[test]
    fn interfaces_without_rdns_stay_gone() {
        let w = World::generate(WorldConfig::tiny(96));
        let model = ChurnModel::new(&w, ChurnConfig::default());
        let mut seen = 0;
        for i in (0..w.interfaces.len()).step_by(7) {
            let id = InterfaceId::from_index(i);
            if hostname::rdns(&w, id).is_none() {
                assert_eq!(model.evolve(id), ChurnOutcome::Gone);
                seen += 1;
            }
        }
        assert!(seen > 0);
    }
}

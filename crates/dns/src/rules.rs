//! DRoP-style decoding rules.
//!
//! Two decoders are provided:
//!
//! * [`RuleEngine`] — authoritative per-domain rules, as used to build the
//!   paper's ground truth: it knows, for each of the seven ground-truth
//!   domains, *which* label carries the location token and *what kind* of
//!   token it is. It never guesses.
//! * [`GenericDecoder`] — a greedy miner that tries every label of every
//!   hostname against the dictionary (airport, CLLI, city name). This is
//!   the kind of inference a commercial vendor could run over all domains;
//!   NetAcuity's vendor profile uses it (§5.2.4 concludes NetAcuity is the
//!   only database that appears to exploit hostname hints).

use crate::dict::HintDictionary;
use crate::hostname;
use routergeo_world::ases::HostnameStyle;
use routergeo_world::{CityId, World};

/// The kind of location token a rule extracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintKind {
    /// Three-letter airport-style code followed by digits (`dll01`).
    Airport,
    /// Six-letter CLLI-style code followed by digits (`dllstx09`).
    Clli,
    /// Full city name, optionally followed by a digit (`frankfurt2`).
    CityName,
}

/// A per-domain decoding rule: in hostnames under `domain_suffix`, label
/// `label_index` (0-based from the left) carries a token of kind `kind`.
#[derive(Debug, Clone)]
pub struct DomainRule {
    /// Domain suffix the rule applies to (matched with `ends_with`).
    pub domain_suffix: String,
    /// Token kind.
    pub kind: HintKind,
    /// 0-based label position of the location token.
    pub label_index: usize,
}

/// Strip a trailing run of digits from a token.
fn strip_digits(token: &str) -> &str {
    token.trim_end_matches(|c: char| c.is_ascii_digit())
}

impl DomainRule {
    /// Apply the rule to a hostname, returning the city the token decodes
    /// to. `None` when the hostname does not match the rule's shape or the
    /// token is not in the dictionary.
    pub fn decode(&self, hostname: &str, dict: &HintDictionary) -> Option<CityId> {
        if !hostname.ends_with(self.domain_suffix.as_str()) {
            return None;
        }
        let label = hostname.split('.').nth(self.label_index)?;
        let token = strip_digits(label);
        if token.is_empty() || token.len() == label.len() {
            // Location labels always carry a numeric site suffix.
            return None;
        }
        match self.kind {
            HintKind::Airport => (token.len() == 3).then(|| dict.airport(token)).flatten(),
            HintKind::Clli => (token.len() == 6).then(|| dict.clli(token)).flatten(),
            HintKind::CityName => dict.city_name(token),
        }
    }
}

/// The authoritative rule set plus dictionary: DRoP with operator-provided
/// rules.
pub struct RuleEngine {
    rules: Vec<DomainRule>,
    dict: HintDictionary,
}

impl RuleEngine {
    /// Build the engine with ground-truth rules for exactly the operators
    /// that have them (`Operator::has_gt_rules`), deriving each rule from
    /// the operator's hostname convention.
    pub fn with_gt_rules(world: &World) -> RuleEngine {
        let dict = HintDictionary::build(world);
        let mut rules = Vec::new();
        for op in &world.operators {
            if !op.has_gt_rules {
                continue;
            }
            let Some(domain) = op.domain.as_deref() else {
                continue;
            };
            let kind = match op.style {
                HostnameStyle::Iata => HintKind::Airport,
                HostnameStyle::Clli => HintKind::Clli,
                HostnameStyle::CityName => HintKind::CityName,
                HostnameStyle::Opaque | HostnameStyle::None => continue,
            };
            rules.push(DomainRule {
                domain_suffix: domain.to_string(),
                kind,
                label_index: 2,
            });
        }
        RuleEngine { rules, dict }
    }

    /// The rule domains (for reporting).
    pub fn domains(&self) -> Vec<&str> {
        self.rules
            .iter()
            .map(|r| r.domain_suffix.as_str())
            .collect()
    }

    /// The dictionary in use.
    pub fn dict(&self) -> &HintDictionary {
        &self.dict
    }

    /// Whether some rule applies to this hostname's domain.
    pub fn has_rule_for(&self, hostname: &str) -> bool {
        self.rules
            .iter()
            .any(|r| hostname.ends_with(r.domain_suffix.as_str()))
    }

    /// Decode a hostname with the authoritative rules.
    pub fn decode(&self, hostname: &str) -> Option<CityId> {
        self.rules
            .iter()
            .find_map(|r| r.decode(hostname, &self.dict))
    }
}

/// The greedy decoder: tries every label against every token kind.
///
/// More coverage, more risk: a label can coincidentally match a dictionary
/// token for the wrong city. That trade-off is intrinsic to rule-less
/// hint mining and is visible in the vendor evaluation.
pub struct GenericDecoder {
    dict: HintDictionary,
}

impl GenericDecoder {
    /// Build over a world's dictionary.
    pub fn new(world: &World) -> GenericDecoder {
        GenericDecoder {
            dict: HintDictionary::build(world),
        }
    }

    /// Wrap an existing dictionary.
    pub fn with_dict(dict: HintDictionary) -> GenericDecoder {
        GenericDecoder { dict }
    }

    /// Try to decode any location hint in the hostname, scanning labels
    /// left to right, skipping the domain's last two labels.
    pub fn decode(&self, hostname: &str) -> Option<CityId> {
        let labels: Vec<&str> = hostname.split('.').collect();
        let scan = labels.len().saturating_sub(2);
        for label in &labels[..scan] {
            let token = strip_digits(label);
            if token.is_empty() {
                continue;
            }
            if token.len() == 6 {
                if let Some(c) = self.dict.clli(token) {
                    return Some(c);
                }
            }
            if token.len() == 3 && token.len() < label.len() {
                if let Some(c) = self.dict.airport(token) {
                    return Some(c);
                }
            }
            if token.len() >= 4 {
                if let Some(c) = self.dict.city_name(token) {
                    return Some(c);
                }
            }
        }
        None
    }
}

/// Decode an interface's location via rDNS + authoritative rules — the
/// full DNS ground-truth path for one interface.
pub fn geolocate_interface(
    world: &World,
    engine: &RuleEngine,
    iface: routergeo_world::InterfaceId,
) -> Option<CityId> {
    let name = hostname::rdns(world, iface)?;
    engine.decode(&name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_world::{InterfaceId, World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::tiny(81))
    }

    #[test]
    fn engine_has_seven_gt_domains() {
        let w = world();
        let engine = RuleEngine::with_gt_rules(&w);
        let mut domains = engine.domains();
        domains.sort();
        assert_eq!(
            domains,
            vec![
                "belwue.de",
                "cogentco.com",
                "digitalwest.net",
                "ntt.net",
                "peak10.net",
                "pnap.net",
                "seabone.net",
            ]
        );
    }

    #[test]
    fn gt_rules_decode_gt_hostnames_to_true_city() {
        let w = world();
        let engine = RuleEngine::with_gt_rules(&w);
        let mut decoded = 0;
        for spec in routergeo_world::ases::GT_OPERATORS {
            let op = w.operator_by_name(spec.name).unwrap();
            for id in w.interfaces_of_operator(op) {
                let Some(city) = geolocate_interface(&w, &engine, id) else {
                    continue;
                };
                let ip = w.interface(id).ip;
                let (true_city, _) = w.true_location(ip).unwrap();
                assert_eq!(city, true_city, "{} decoded to wrong city", ip);
                decoded += 1;
            }
        }
        assert!(decoded > 100, "only {decoded} ground-truth decodes");
    }

    #[test]
    fn engine_ignores_rule_less_domains() {
        let w = world();
        let engine = RuleEngine::with_gt_rules(&w);
        // gtt is opaque and rule-less; lumen has hints but no GT rules.
        for name in ["gtt", "lumen", "telia"] {
            let op = w.operator_by_name(name).unwrap();
            for id in w.interfaces_of_operator(op).into_iter().take(30) {
                assert_eq!(geolocate_interface(&w, &engine, id), None);
            }
        }
    }

    #[test]
    fn generic_decoder_reads_non_gt_hint_domains() {
        let w = world();
        let generic = GenericDecoder::new(&w);
        // lumen uses CLLI hints without GT rules; the generic decoder
        // should still read many of them.
        let op = w.operator_by_name("lumen").unwrap();
        let mut hits = 0;
        let mut total = 0;
        for id in w.interfaces_of_operator(op) {
            if let Some(name) = hostname::rdns(&w, id) {
                total += 1;
                if let Some(city) = generic.decode(&name) {
                    let (true_city, _) = w.true_location(w.interface(id).ip).unwrap();
                    if city == true_city {
                        hits += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            hits * 2 > total,
            "generic decoder hit only {hits}/{total} lumen names"
        );
    }

    #[test]
    fn generic_decoder_rejects_opaque_names() {
        let w = world();
        let generic = GenericDecoder::new(&w);
        let op = w.operator_by_name("gtt").unwrap();
        let mut false_hits = 0;
        let mut total = 0;
        for id in w.interfaces_of_operator(op).into_iter().take(200) {
            if let Some(name) = hostname::rdns(&w, id) {
                total += 1;
                if generic.decode(&name).is_some() {
                    false_hits += 1;
                }
            }
        }
        assert!(total > 0);
        // Hex blobs can occasionally collide with a token; keep it rare.
        assert!(
            false_hits * 10 <= total,
            "{false_hits}/{total} opaque names decoded"
        );
    }

    #[test]
    fn rule_requires_site_digits() {
        let w = world();
        let engine = RuleEngine::with_gt_rules(&w);
        // A label without the numeric site suffix must not decode.
        assert_eq!(engine.decode("ae-1.r01.xyz.cogentco.com"), None);
        assert_eq!(engine.decode(""), None);
        assert_eq!(engine.decode("..."), None);
    }

    #[test]
    fn decode_survives_malformed_hostnames() {
        let w = world();
        let engine = RuleEngine::with_gt_rules(&w);
        let generic = GenericDecoder::new(&w);
        for s in [
            "",
            ".",
            "...",
            "a",
            "0.0.0.cogentco.com",
            "\u{0}weird.\u{7f}.cogentco.com",
            "xn--caf-dma.example",
        ] {
            let _ = engine.decode(s);
            let _ = generic.decode(s);
        }
    }

    #[test]
    fn stale_hostname_decodes_to_stale_city() {
        // The §3.1 mechanism: an address reassigned to a router in another
        // city while keeping its old hostname decodes to the OLD city.
        let w = world();
        let engine = RuleEngine::with_gt_rules(&w);
        let cogent = w.operator_by_name("cogentco").unwrap();
        let ifaces = w.interfaces_of_operator(cogent);
        let old = ifaces
            .iter()
            .find_map(|id| {
                hostname::rdns(&w, *id).filter(|_| geolocate_interface(&w, &engine, *id).is_some())
            })
            .expect("some decodable cogent hostname");
        let old_city = engine.decode(&old).unwrap();
        // Decoding the same (stale) hostname later still yields the old
        // city regardless of where the address now lives.
        assert_eq!(engine.decode(&old), Some(old_city));
    }

    #[test]
    fn strip_digits_behaviour() {
        assert_eq!(strip_digits("dllstx09"), "dllstx");
        assert_eq!(strip_digits("abc"), "abc");
        assert_eq!(strip_digits("123"), "");
        assert_eq!(strip_digits(""), "");
    }

    #[test]
    fn interfaces_without_rdns_do_not_geolocate() {
        let w = world();
        let engine = RuleEngine::with_gt_rules(&w);
        let mut none_count = 0;
        for i in (0..w.interfaces.len()).step_by(11) {
            let id = InterfaceId::from_index(i);
            if hostname::rdns(&w, id).is_none() {
                assert_eq!(geolocate_interface(&w, &engine, id), None);
                none_count += 1;
            }
        }
        assert!(none_count > 0);
    }
}

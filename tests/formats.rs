//! Integration: format equivalence and robustness across crates — every
//! representation of a vendor database (in-memory, RGDB binary, CSV) must
//! answer identically, and parsers must reject garbage rather than panic.

use proptest::prelude::*;
use routergeo::db::synth::{build_vendor, SignalWorld, VendorId, VendorProfile};
use routergeo::db::{csvdb, rgdb, GeoDatabase, InMemoryDb};
use routergeo::net::Prefix;
use routergeo::trace::TracerouteRecord;
use routergeo::world::{World, WorldConfig};
use std::net::Ipv4Addr;

fn vendor_db(seed: u64, vendor: VendorId) -> (World, InMemoryDb) {
    let world = World::generate(WorldConfig::tiny(seed));
    let signals = SignalWorld::new(&world);
    let db = build_vendor(&signals, &VendorProfile::preset(vendor));
    (world, db)
}

fn to_rgdb(db: &InMemoryDb) -> rgdb::RgdbReader {
    let entries: Vec<(Prefix, routergeo::db::LocationRecord)> = db
        .iter()
        .flat_map(|(start, end, rec)| {
            Prefix::cover_range(start, end)
                .into_iter()
                .map(move |p| (p, rec.clone()))
        })
        .collect();
    let image = rgdb::write(db.name(), entries.iter().map(|(p, r)| (*p, r)));
    rgdb::RgdbReader::open(image).expect("fresh image is valid")
}

#[test]
fn all_formats_answer_identically_for_all_vendors() {
    for vendor in VendorId::ALL {
        let (world, db) = vendor_db(2001, vendor);
        let reader = to_rgdb(&db);
        let csv_db = csvdb::parse(db.name(), &csvdb::write(&db)).expect("csv roundtrip");
        // Every interface plus unallocated space and boundary addresses.
        let mut probes: Vec<Ipv4Addr> = world.interfaces.iter().map(|i| i.ip).collect();
        probes.extend([
            Ipv4Addr::new(0, 0, 0, 0),
            Ipv4Addr::new(255, 255, 255, 255),
            Ipv4Addr::new(203, 0, 113, 1),
        ]);
        for ip in probes.iter().step_by(3) {
            let a = db.lookup(*ip);
            assert_eq!(a, reader.lookup(*ip), "{vendor} RGDB at {ip}");
            assert_eq!(a, csv_db.lookup(*ip), "{vendor} CSV at {ip}");
        }
    }
}

#[test]
fn rgdb_rejects_any_single_byte_corruption_of_the_header() {
    let (_, db) = vendor_db(2002, VendorId::NetAcuity);
    let entries: Vec<(Prefix, routergeo::db::LocationRecord)> = db
        .iter()
        .flat_map(|(s, e, r)| {
            Prefix::cover_range(s, e)
                .into_iter()
                .map(move |p| (p, r.clone()))
        })
        .collect();
    let image = rgdb::write(db.name(), entries.iter().map(|(p, r)| (*p, r)));
    // Flip each header byte: either the reader errors out, or (for a very
    // few degenerate flips, e.g. name-length changes that still checksum)
    // it must at least not panic.
    for i in 0..28 {
        let mut bytes = image.to_vec();
        bytes[i] ^= 0xA5;
        match rgdb::RgdbReader::open(bytes.into()) {
            Err(_) => {}
            Ok(reader) => {
                let _ = reader.lookup(Ipv4Addr::new(6, 0, 0, 1));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rgdb_reader_never_panics_on_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = rgdb::RgdbReader::open(bytes::Bytes::from(bytes));
    }

    #[test]
    fn csv_parser_never_panics_on_random_text(text in "[ -~\n]{0,400}") {
        let _ = csvdb::parse("fuzz", &text);
    }

    #[test]
    fn atlas_json_parser_never_panics_on_random_text(text in "[ -~]{0,300}") {
        let _ = TracerouteRecord::from_atlas_json(&text);
    }

    #[test]
    fn atlas_json_roundtrips_arbitrary_records(
        prb in any::<u32>(),
        src in any::<u32>(),
        dst in any::<u32>(),
        hops in proptest::collection::vec((any::<u32>(), proptest::option::of(0.0f64..5e3)), 0..20),
        reached in any::<bool>(),
    ) {
        use routergeo::trace::Hop;
        let record = TracerouteRecord {
            origin_id: prb,
            src_ip: Ipv4Addr::from(src),
            dst_ip: Ipv4Addr::from(dst),
            hops: hops
                .iter()
                .enumerate()
                .map(|(i, (ip, rtt))| match rtt {
                    Some(r) => Hop { hop: i as u8 + 1, ip: Some(Ipv4Addr::from(*ip)), rtt_ms: Some(*r) },
                    None => Hop::timeout(i as u8 + 1),
                })
                .collect(),
            reached,
        };
        let json = record.to_atlas_json();
        let back = TracerouteRecord::from_atlas_json(&json).expect("own output parses");
        // Structure is exact; RTTs may round in the last ulp through the
        // JSON float formatter.
        prop_assert_eq!(record.origin_id, back.origin_id);
        prop_assert_eq!(record.src_ip, back.src_ip);
        prop_assert_eq!(record.dst_ip, back.dst_ip);
        prop_assert_eq!(record.reached, back.reached);
        prop_assert_eq!(record.hops.len(), back.hops.len());
        for (a, b) in record.hops.iter().zip(back.hops.iter()) {
            prop_assert_eq!(a.hop, b.hop);
            prop_assert_eq!(a.ip, b.ip);
            match (a.rtt_ms, b.rtt_ms) {
                (Some(x), Some(y)) => prop_assert!((x - y).abs() <= x.abs() * 1e-12),
                (None, None) => {}
                other => prop_assert!(false, "rtt presence diverged: {:?}", other),
            }
        }
    }
}

#[test]
fn csv_of_empty_database_roundtrips() {
    let db = routergeo::db::inmem::InMemoryDbBuilder::new("empty")
        .build()
        .unwrap();
    let text = csvdb::write(&db);
    assert!(text.is_empty());
    let back = csvdb::parse("empty", &text).unwrap();
    assert!(back.is_empty());
}

//! Integration: the full Tiny-scale report is byte-identical at every
//! thread count. This is the contract behind `routergeo_pool`'s sharded
//! map-reduce — shard boundaries and per-shard seeds depend only on the
//! input, never on how many workers drain the shard queue, and results
//! merge in shard order. CI runs this as its determinism gate.

use routergeo::world::Scale;
use routergeo_bench::{experiments as exp, Lab, LabConfig};

/// Render every parallelised artifact — Table 1, coverage, consistency
/// (with the Figure 1 CDFs), and the full accuracy report — into one
/// string for byte comparison.
fn full_report(threads: usize) -> String {
    let mut config = LabConfig::new(20_170_301, Scale::Tiny);
    config.threads = Some(threads);
    let lab = Lab::build(config);
    assert_eq!(lab.pool.threads(), threads);

    let mut out = String::new();
    let (_, _, t) = exp::table1(&lab);
    out.push_str(&t.render());
    let (_, t) = exp::ark_coverage(&lab);
    out.push_str(&t.render());
    let (_, tables) = exp::ark_consistency(&lab);
    for t in &tables {
        out.push_str(&t.render());
    }
    let (_, tables) = exp::gt_accuracy(&lab);
    for t in &tables {
        out.push_str(&t.render());
    }
    out
}

#[test]
fn tiny_report_is_byte_identical_across_thread_counts() {
    let serial = full_report(1);
    assert!(serial.len() > 1_000, "report suspiciously short:\n{serial}");
    for threads in [2, 8] {
        let parallel = full_report(threads);
        assert_eq!(
            serial, parallel,
            "report bytes differ between 1 and {threads} threads"
        );
    }
}

//! Integration: the whole pipeline is a pure function of its seeds.
//! Reproducibility is the core promise of the harness — EXPERIMENTS.md
//! numbers must be regenerable bit-for-bit.

use routergeo::core::groundtruth::GroundTruth;
use routergeo::cymru::MappingService;
use routergeo::db::synth::{build_vendor, SignalWorld, VendorId, VendorProfile};
use routergeo::db::GeoDatabase;
use routergeo::dns::RuleEngine;
use routergeo::rtt::{build_dataset, ProximityConfig};
use routergeo::trace::{ArkCampaign, ArkConfig, AtlasBuiltins, AtlasConfig, Topology};
use routergeo::world::{World, WorldConfig};

fn gt_fingerprint(seed: u64) -> (usize, Vec<(std::net::Ipv4Addr, String)>) {
    let world = World::generate(WorldConfig::tiny(seed));
    let topo = Topology::build(&world);
    let engine = RuleEngine::with_gt_rules(&world);
    let whois = MappingService::build(&world);
    let records = AtlasBuiltins::new(
        &world,
        &topo,
        AtlasConfig {
            seed: seed ^ 9,
            targets: 5,
            instances_per_target: 3,
        },
    )
    .run();
    let (rtt, _) = build_dataset(&world, &records, &ProximityConfig::default());
    let dns = GroundTruth::dns_based(&world, &engine, &whois, 0.02);
    let gt = GroundTruth::combine(dns, GroundTruth::from_rtt(&rtt, &whois));
    let sample = gt
        .entries
        .iter()
        .step_by(7)
        .map(|e| (e.ip, format!("{}@{}", e.country, e.coord)))
        .collect();
    (gt.len(), sample)
}

#[test]
fn ground_truth_pipeline_is_deterministic() {
    let a = gt_fingerprint(3001);
    let b = gt_fingerprint(3001);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}

#[test]
fn different_seeds_give_different_worlds() {
    let a = gt_fingerprint(3001);
    let c = gt_fingerprint(3002);
    assert_ne!(a.1, c.1);
}

#[test]
fn vendor_databases_are_deterministic_across_processesque_rebuilds() {
    let world1 = World::generate(WorldConfig::tiny(3003));
    let world2 = World::generate(WorldConfig::tiny(3003));
    let s1 = SignalWorld::new(&world1);
    let s2 = SignalWorld::new(&world2);
    for vendor in VendorId::ALL {
        let db1 = build_vendor(&s1, &VendorProfile::preset(vendor));
        let db2 = build_vendor(&s2, &VendorProfile::preset(vendor));
        assert_eq!(db1.len(), db2.len());
        for iface in world1.interfaces.iter().step_by(17) {
            assert_eq!(db1.lookup(iface.ip), db2.lookup(iface.ip), "{vendor}");
        }
    }
}

#[test]
fn ark_campaign_is_deterministic_but_seed_sensitive() {
    let world = World::generate(WorldConfig::tiny(3004));
    let topo = Topology::build(&world);
    let mk = |seed| {
        ArkCampaign::new(
            &world,
            &topo,
            ArkConfig {
                seed,
                monitors: 8,
                traceroutes: Some(3_000),
            },
        )
        .extract_dataset()
    };
    let a = mk(5);
    let b = mk(5);
    let c = mk(6);
    assert_eq!(a.interfaces, b.interfaces);
    assert_ne!(a.interfaces, c.interfaces);
}

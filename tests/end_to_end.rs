//! Cross-crate integration: the full paper pipeline on a small world,
//! asserting the invariants that hold *between* crates — the ground truth
//! is true, the vendor ordering matches the paper, and the analysis
//! modules agree with each other.

use routergeo::core::accuracy::evaluate;
use routergeo::core::consistency::consistency;
use routergeo::core::coverage::coverage;
use routergeo::core::groundtruth::{GroundTruth, GtMethod};
use routergeo::core::recommend::recommendations;
use routergeo::cymru::MappingService;
use routergeo::db::synth::{build_vendor, SignalWorld, VendorProfile};
use routergeo::db::InMemoryDb;
use routergeo::dns::RuleEngine;
use routergeo::rtt::{build_dataset, ProximityConfig};
use routergeo::trace::{ArkCampaign, ArkConfig, AtlasBuiltins, AtlasConfig, Topology};
use routergeo::world::{World, WorldConfig};

struct Pipeline {
    world: World,
    dbs: Vec<InMemoryDb>,
    gt: GroundTruth,
    ark: routergeo::trace::ArkDataset,
}

fn pipeline(seed: u64) -> Pipeline {
    let world = World::generate(WorldConfig::small(seed));
    let topo = Topology::build(&world);
    let ark = ArkCampaign::new(
        &world,
        &topo,
        ArkConfig {
            seed: seed ^ 1,
            monitors: 16,
            traceroutes: Some(12_000),
        },
    )
    .extract_dataset();
    let engine = RuleEngine::with_gt_rules(&world);
    let whois = MappingService::build(&world);
    let records = AtlasBuiltins::new(
        &world,
        &topo,
        AtlasConfig {
            seed: seed ^ 2,
            targets: 8,
            instances_per_target: 4,
        },
    )
    .run();
    let (rtt, _) = build_dataset(&world, &records, &ProximityConfig::default());
    let dns = GroundTruth::dns_based(&world, &engine, &whois, 0.05);
    let gt = GroundTruth::combine(dns, GroundTruth::from_rtt(&rtt, &whois));
    let signals = SignalWorld::new(&world);
    let dbs = VendorProfile::all_presets()
        .iter()
        .map(|p| build_vendor(&signals, p))
        .collect();
    Pipeline {
        world,
        dbs,
        gt,
        ark,
    }
}

#[test]
fn ground_truth_is_actually_true() {
    let p = pipeline(1001);
    assert!(p.gt.len() > 800, "GT too small: {}", p.gt.len());
    // DNS entries: exact city coordinates of the true city.
    for e in p.gt.of_method(GtMethod::DnsBased) {
        let (city, _) = p.world.true_location(e.ip).expect("interface");
        assert_eq!(p.world.city(city).coord, e.coord);
    }
    // RTT entries: within ~60 km of the true router for ≥95%.
    let mut far = 0usize;
    let mut total = 0usize;
    for e in p.gt.of_method(GtMethod::RttProximity) {
        let router = p.world.router_of_ip(e.ip).expect("interface");
        total += 1;
        if e.coord.distance_km(&router.coord) > 60.0 {
            far += 1;
        }
    }
    assert!(total > 300);
    assert!((far as f64) < total as f64 * 0.05, "{far}/{total} far");
}

#[test]
fn paper_ordering_holds_end_to_end() {
    let p = pipeline(1002);
    let report = evaluate(&p.dbs, &p.gt, 20);

    // NetAcuity best country accuracy; registry-fed databases comparable.
    let accs: Vec<f64> = report
        .overall
        .iter()
        .map(|a| a.country_accuracy())
        .collect();
    assert!(accs[3] > accs[0] && accs[3] > accs[1] && accs[3] > accs[2]);
    let spread = (accs[0] - accs[1]).abs().max((accs[0] - accs[2]).abs());
    assert!(
        spread < 0.08,
        "registry-fed databases not comparable: {accs:?}"
    );

    // MaxMind city coverage low, paid above free; full-coverage databases
    // at (near) 100%.
    let city_cov: Vec<f64> = report.overall.iter().map(|a| a.city_coverage()).collect();
    assert!(city_cov[1] < city_cov[2] && city_cov[2] < 0.8);
    assert!(city_cov[0] > 0.9 && city_cov[3] > 0.9);

    // IP2Location least accurate at city level.
    let city_acc: Vec<f64> = report.overall.iter().map(|a| a.city_accuracy()).collect();
    assert!(city_acc[0] < city_acc[2] && city_acc[0] < city_acc[3]);

    // The recommendation engine reaches the paper's conclusion from data.
    let recs = recommendations(&report);
    assert!(
        recs.iter().any(|r| r.text.contains("NetAcuity")),
        "{recs:#?}"
    );
}

#[test]
fn coverage_and_consistency_agree_on_population() {
    let p = pipeline(1003);
    let cons = consistency(&p.dbs, &p.ark.interfaces);
    for (i, db) in p.dbs.iter().enumerate() {
        let cov = coverage(db, &p.ark.interfaces);
        assert_eq!(cov.total, cons.total);
        // Every pair's agreement denominators cannot exceed the smaller
        // country coverage of the two databases.
        for j in 0..p.dbs.len() {
            if i != j {
                let a = cons.country_agree[i][j];
                assert!((0.0..=1.0).contains(&a));
            }
        }
    }
    // Figure 1 population is bounded by the weakest city coverage.
    let min_city = p
        .dbs
        .iter()
        .map(|db| coverage(db, &p.ark.interfaces).with_city)
        .min()
        .unwrap();
    assert!(cons.city_in_all <= min_city);
}

#[test]
fn ark_set_is_a_subset_of_world_interfaces() {
    let p = pipeline(1004);
    assert!(!p.ark.is_empty());
    for ip in &p.ark.interfaces {
        assert!(p.world.find_interface(*ip).is_some(), "{ip}");
    }
    // Sorted and unique.
    for w in p.ark.interfaces.windows(2) {
        assert!(w[0] < w[1]);
    }
}

#[test]
fn gt_rir_tags_match_the_whois_service() {
    let p = pipeline(1005);
    let whois = MappingService::build(&p.world);
    for e in p.gt.entries.iter().step_by(13) {
        let expected = whois.lookup(e.ip).map(|r| r.rir);
        assert_eq!(e.rir, expected, "{}", e.ip);
    }
}

//! `routergeo` — umbrella crate for the reproduction of
//! *"A Look at Router Geolocation in Public and Commercial Databases"*
//! (Gharaibeh et al., IMC 2017).
//!
//! This crate re-exports the workspace members under stable module names so
//! examples and downstream users need a single dependency:
//!
//! ```
//! use routergeo::geo::Coordinate;
//! let nyc = Coordinate::new(40.7128, -74.0060).unwrap();
//! let sfo = Coordinate::new(37.7749, -122.4194).unwrap();
//! assert!(nyc.distance_km(&sfo) > 4000.0);
//! ```
//!
//! See `DESIGN.md` at the repository root for the full system inventory and
//! the per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured
//! results.

#![forbid(unsafe_code)]

pub use routergeo_core as core;
pub use routergeo_cymru as cymru;
pub use routergeo_db as db;
pub use routergeo_dns as dns;
pub use routergeo_gazetteer as gazetteer;
pub use routergeo_geo as geo;
pub use routergeo_net as net;
pub use routergeo_pool as pool;
pub use routergeo_rtt as rtt;
pub use routergeo_trace as trace;
pub use routergeo_world as world;

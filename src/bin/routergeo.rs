//! `routergeo` — interactive CLI over a generated world.
//!
//! ```text
//! usage: routergeo [--seed N] [--scale tiny|small|tenth|paper] <command>
//!   lookup <ip>         vendor answers + oracle truth for an address
//!   decode <hostname>   run the DRoP rules and the greedy miner on a name
//!   whois <ip>          ASN / prefix / registry country / RIR
//!   random [n]          lookup n random router interfaces (default 3)
//! ```
//!
//! The world is regenerated from the seed on every run (sub-second at the
//! default scale), so the tool needs no state on disk.

use routergeo::cymru::MappingService;
use routergeo::db::synth::{build_vendor, SignalWorld, VendorProfile};
use routergeo::db::GeoDatabase;
use routergeo::dns::{GenericDecoder, RuleEngine};
use routergeo::world::{Scale, World, WorldConfig};
use std::net::Ipv4Addr;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: routergeo [--seed N] [--scale tiny|small|tenth|paper] <command>\n\
         commands:\n\
           lookup <ip>        vendor answers + oracle truth for an address\n\
           decode <hostname>  run the DRoP rules and the greedy miner\n\
           whois <ip>         ASN / prefix / registry country / RIR\n\
           random [n]         lookup n random router interfaces (default 3)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut seed = 20_170_301u64;
    let mut scale = Scale::Small;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--scale" => match args.next().as_deref().and_then(Scale::parse) {
                Some(v) => scale = v,
                None => return usage(),
            },
            _ => rest.push(arg),
        }
    }
    let Some(command) = rest.first().cloned() else {
        return usage();
    };

    eprintln!("generating world (seed {seed}, {scale:?})…");
    let world = World::generate(WorldConfig::new(seed, scale));

    match command.as_str() {
        "lookup" => {
            let Some(ip) = rest.get(1).and_then(|s| s.parse::<Ipv4Addr>().ok()) else {
                return usage();
            };
            lookup(&world, &[ip]);
            ExitCode::SUCCESS
        }
        "random" => {
            let n: usize = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
            let step = (world.interfaces.len() / n.max(1)).max(1);
            let ips: Vec<Ipv4Addr> = world
                .interfaces
                .iter()
                .step_by(step)
                .take(n)
                .map(|i| i.ip)
                .collect();
            lookup(&world, &ips);
            ExitCode::SUCCESS
        }
        "decode" => {
            let Some(name) = rest.get(1) else {
                return usage();
            };
            let engine = RuleEngine::with_gt_rules(&world);
            let generic = GenericDecoder::new(&world);
            match engine.decode(name) {
                Some(city) => {
                    let c = world.city(city);
                    println!("rules:  {} ({}, {})", c.name, c.country, c.coord);
                }
                None => println!(
                    "rules:  no match{}",
                    if engine.has_rule_for(name) {
                        " (domain has rules; token unknown)"
                    } else {
                        " (no rules for this domain)"
                    }
                ),
            }
            match generic.decode(name) {
                Some(city) => {
                    let c = world.city(city);
                    println!("miner:  {} ({}, {})", c.name, c.country, c.coord);
                }
                None => println!("miner:  no hint found"),
            }
            ExitCode::SUCCESS
        }
        "whois" => {
            let Some(ip) = rest.get(1).and_then(|s| s.parse::<Ipv4Addr>().ok()) else {
                return usage();
            };
            let service = MappingService::build(&world);
            println!("{}", service.format_row(ip));
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn lookup(world: &World, ips: &[Ipv4Addr]) {
    let signals = SignalWorld::new(world);
    let dbs: Vec<_> = VendorProfile::all_presets()
        .iter()
        .map(|p| build_vendor(&signals, p))
        .collect();
    for ip in ips {
        println!("{ip}:");
        match world.true_location(*ip) {
            Some((city, coord)) => {
                let c = world.city(city);
                let info = world.block_info(*ip).expect("interface has a block");
                let op = world.operator(info.op);
                println!(
                    "  truth     {} ({}) at {:.3},{:.3} — {} [{:?}], block {} ({})",
                    c.name,
                    c.country,
                    coord.lat(),
                    coord.lon(),
                    op.name,
                    op.kind,
                    info.block,
                    info.rir
                );
            }
            None => println!("  truth     not a router interface in this world"),
        }
        for db in &dbs {
            match db.lookup(*ip) {
                Some(rec) => {
                    let where_ = match (&rec.city, rec.country) {
                        (Some(city), Some(cc)) => format!("{city}, {cc}"),
                        (None, Some(cc)) => format!("{cc} (country only)"),
                        _ => "(empty record)".into(),
                    };
                    let err = match (rec.coord, world.true_location(*ip)) {
                        (Some(c), Some((_, truth))) => {
                            format!("  [{:.1} km off]", c.distance_km(&truth))
                        }
                        _ => String::new(),
                    };
                    println!("  {:<18} {}{}", db.name(), where_, err);
                }
                None => println!("  {:<18} no record", db.name()),
            }
        }
        println!();
    }
}

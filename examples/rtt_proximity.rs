//! RTT-proximity ground truth (§2.3.2 / §3.2): run Atlas-style built-in
//! traceroutes, extract sub-0.5 ms hops, disqualify bad probes, and check
//! the resulting locations against the oracle. Also demonstrates the
//! Atlas-shaped JSON serialization of measurement records.
//!
//! ```sh
//! cargo run --release --example rtt_proximity
//! ```

use routergeo::rtt::{build_dataset, ProximityConfig};
use routergeo::trace::{AtlasBuiltins, AtlasConfig, Topology, TracerouteRecord};
use routergeo::world::{World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::small(33));
    let topo = Topology::build(&world);

    // Run the built-ins: every probe traces its nearest instance of each
    // anycast service.
    let builtins = AtlasBuiltins::new(&world, &topo, AtlasConfig::default());
    let records = builtins.run();
    println!(
        "{} probes ran {} traceroutes toward {} services",
        world.probes.len(),
        records.len(),
        builtins.target_count()
    );

    // The records serialize to (and parse from) Atlas-shaped JSON.
    let json = records[0].to_atlas_json();
    println!("\nsample record as Atlas JSON:\n{json}\n");
    let parsed = TracerouteRecord::from_atlas_json(&json).expect("roundtrip");
    assert_eq!(parsed, records[0]);

    // Extract + QA (§3.2).
    let config = ProximityConfig::default();
    let (dataset, qa) = build_dataset(&world, &records, &config);
    println!("candidates before QA:     {}", qa.candidates_before);
    println!(
        "default-centroid probes:  {} (removed {} addresses)",
        qa.centroid_probes.len(),
        qa.removed_by_centroid
    );
    println!(
        "RTT-nearby groups:        {} ({} inconsistent; {} probes disqualified, {} addresses removed)",
        qa.nearby_groups, qa.inconsistent_groups, qa.disqualified_probes.len(),
        qa.removed_by_consistency
    );
    println!("final dataset:            {} addresses", dataset.len());
    println!(
        "unique countries / coords: {} / {}",
        dataset.country_count(),
        dataset.unique_coord_count()
    );

    // Oracle check: the credited locations really are near the routers.
    let mut worst: f64 = 0.0;
    let mut within50 = 0usize;
    for e in &dataset.entries {
        let router = world.router_of_ip(e.ip).expect("interface");
        let d = e.coord.distance_km(&router.coord);
        worst = worst.max(d);
        if d <= 50.0 {
            within50 += 1;
        }
    }
    println!(
        "\noracle check: {:.2}% of entries within the 50 km bound (worst: {:.0} km)",
        100.0 * within50 as f64 / dataset.len().max(1) as f64,
        worst
    );
}

//! DNS-based router geolocation (the DRoP pipeline, §2.3.1): reverse-DNS a
//! set of router interfaces, decode location hints with the authoritative
//! per-domain rules, and check the results against the oracle. Also shows
//! the greedy generic decoder a vendor without rules would use, and the
//! hostname churn model from §3.1.
//!
//! ```sh
//! cargo run --release --example dns_geolocate
//! ```

use routergeo::dns::{hostname, ChurnConfig, ChurnModel, ChurnOutcome, GenericDecoder, RuleEngine};
use routergeo::world::{World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::small(21));
    let engine = RuleEngine::with_gt_rules(&world);
    let generic = GenericDecoder::new(&world);
    println!("rule domains: {:?}\n", engine.domains());

    // Decode some hostnames of a ground-truth operator.
    let cogent = world.operator_by_name("cogentco").expect("cogent exists");
    let mut shown = 0;
    println!("{:<46} {:<14} truth", "hostname", "decoded");
    for id in world.interfaces_of_operator(cogent) {
        let Some(name) = hostname::rdns(&world, id) else {
            continue;
        };
        let decoded = engine.decode(&name);
        let ip = world.interface(id).ip;
        let (true_city, _) = world.true_location(ip).unwrap();
        println!(
            "{:<46} {:<14} {}",
            name,
            decoded
                .map(|c| world.city(c).name.clone())
                .unwrap_or_else(|| "(no match)".into()),
            world.city(true_city).name
        );
        shown += 1;
        if shown >= 8 {
            break;
        }
    }

    // Aggregate accuracy of both decoders over all hint-bearing operators.
    let mut rules_hits = 0usize;
    let mut generic_hits = 0usize;
    let mut named = 0usize;
    for (idx, iface) in world.interfaces.iter().enumerate() {
        let id = routergeo::world::InterfaceId::from_index(idx);
        let Some(name) = hostname::rdns(&world, id) else {
            continue;
        };
        named += 1;
        let (true_city, _) = world.true_location(iface.ip).unwrap();
        if engine.decode(&name) == Some(true_city) {
            rules_hits += 1;
        }
        if generic.decode(&name) == Some(true_city) {
            generic_hits += 1;
        }
    }
    println!(
        "\nover {named} named interfaces: authoritative rules decode {:.1}%, \
         greedy miner {:.1}% (the miner reads domains the rules cannot)",
        100.0 * rules_hits as f64 / named as f64,
        100.0 * generic_hits as f64 / named as f64
    );

    // Churn (§3.1): what happens to these hostnames after ~16 months.
    let model = ChurnModel::new(&world, ChurnConfig::default());
    let (mut same, mut renamed, mut moved, mut lost, mut gone) = (0, 0, 0, 0, 0);
    let ids = world.interfaces_of_operator(cogent);
    for id in &ids {
        match model.evolve(*id) {
            ChurnOutcome::Same(_) => same += 1,
            ChurnOutcome::RenamedSameLocation(_) => renamed += 1,
            ChurnOutcome::Moved(_, _) => moved += 1,
            ChurnOutcome::HintLost(_) => lost += 1,
            ChurnOutcome::Gone => gone += 1,
        }
    }
    println!(
        "\n16-month churn over {} cogent interfaces: {} same, {} renamed-in-place, \
         {} moved, {} hint lost, {} rDNS gone",
        ids.len(),
        same,
        renamed,
        moved,
        lost,
        gone
    );
}

//! Database formats: serialize a synthesized vendor database to the RGDB
//! binary format and to IP2Location-style CSV, read both back, and verify
//! all three representations answer identically. Also demonstrates the
//! reader's corruption handling.
//!
//! ```sh
//! cargo run --release --example database_formats
//! ```

use routergeo::db::synth::{build_vendor, SignalWorld, VendorId, VendorProfile};
use routergeo::db::{csvdb, rgdb, GeoDatabase};
use routergeo::net::Prefix;
use routergeo::world::{World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::tiny(99));
    let signals = SignalWorld::new(&world);
    let db = build_vendor(&signals, &VendorProfile::preset(VendorId::NetAcuity));
    println!("in-memory database: {} range entries", db.len());

    // RGDB: MaxMind-style binary trie with a deduplicated data section.
    let entries: Vec<(Prefix, routergeo::db::LocationRecord)> = db
        .iter()
        .flat_map(|(start, end, rec)| {
            Prefix::cover_range(start, end)
                .into_iter()
                .map(move |p| (p, rec.clone()))
        })
        .collect();
    let image = rgdb::write(db.name(), entries.iter().map(|(p, r)| (*p, r)));
    let reader = rgdb::RgdbReader::open(image.clone()).expect("valid image");
    println!(
        "RGDB image: {} bytes, {} deduplicated records for {} prefixes",
        image.len(),
        reader.record_count(),
        entries.len()
    );

    // CSV: IP2Location-style range rows.
    let csv = csvdb::write(&db);
    let csv_db = csvdb::parse(db.name(), &csv).expect("valid CSV");
    println!("CSV: {} lines, {} bytes", csv.lines().count(), csv.len());
    println!("first row: {}", csv.lines().next().unwrap_or(""));

    // All three answer identically for every interface.
    let mut checked = 0usize;
    for iface in world.interfaces.iter().step_by(7) {
        let a = db.lookup(iface.ip);
        let b = reader.lookup(iface.ip);
        let c = csv_db.lookup(iface.ip);
        assert_eq!(a, b, "RGDB diverged at {}", iface.ip);
        assert_eq!(a, c, "CSV diverged at {}", iface.ip);
        checked += 1;
    }
    println!("\n{checked} lookups agree across in-memory / RGDB / CSV");

    // Corruption is detected, not propagated.
    let mut corrupt = image.to_vec();
    let n = corrupt.len();
    corrupt[n / 2] ^= 0xFF;
    match rgdb::RgdbReader::open(corrupt.into()) {
        Err(e) => println!("corrupted image rejected: {e}"),
        Ok(_) => unreachable!("corruption must not pass validation"),
    }
    match csvdb::parse("x", "\"not\",\"a\",\"database\"\n") {
        Err(e) => println!("malformed CSV rejected: {e}"),
        Ok(_) => unreachable!("bad CSV must not parse"),
    }
}

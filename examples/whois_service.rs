//! The Team Cymru-style bulk whois service (§2.3.3) over a real TCP
//! socket: spawn the server on an ephemeral port, query a batch of router
//! addresses with the client, and cross-check against the in-process
//! mapping.
//!
//! ```sh
//! cargo run --release --example whois_service
//! ```

use routergeo::cymru::{bulk_lookup, client::BulkAnswer, MappingService, WhoisServer};
use routergeo::world::{World, WorldConfig};
use std::sync::Arc;

fn main() {
    let world = World::generate(WorldConfig::tiny(55));
    let service = Arc::new(MappingService::build(&world));
    println!(
        "mapping service: {} announced prefixes",
        service.prefix_count()
    );

    let mut server = WhoisServer::spawn(Arc::clone(&service)).expect("bind ephemeral port");
    println!("whois server listening on {}", server.addr());

    // A batch of router interfaces plus one unallocated address.
    let mut ips: Vec<std::net::Ipv4Addr> = world
        .interfaces
        .iter()
        .step_by(world.interfaces.len() / 8)
        .map(|i| i.ip)
        .collect();
    ips.push("203.0.113.99".parse().unwrap());

    let answers = bulk_lookup(server.addr(), &ips).expect("bulk query");
    println!(
        "\n{:<16} {:<8} {:<18} {:<4} registry",
        "address", "asn", "prefix", "cc"
    );
    for answer in &answers {
        match answer {
            BulkAnswer::Found(ip, rec) => {
                println!(
                    "{:<16} {:<8} {:<18} {:<4} {}",
                    ip,
                    rec.asn,
                    rec.prefix.to_string(),
                    rec.country,
                    rec.rir
                );
                // The wire answer must agree with the in-process service.
                assert_eq!(Some(*rec), service.lookup(*ip));
            }
            BulkAnswer::NotFound(ip) => println!("{ip:<16} (not announced)"),
        }
    }

    server.shutdown();
    println!("\nserver shut down cleanly");
}

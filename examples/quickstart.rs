//! Quickstart: generate a world, synthesize the four databases, and look
//! up a handful of router addresses against the oracle.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use routergeo::db::synth::{build_vendor, SignalWorld, VendorProfile};
use routergeo::db::GeoDatabase;
use routergeo::world::{World, WorldConfig};

fn main() {
    // 1. A deterministic synthetic world: cities, operators, routers,
    //    interfaces, address plan. Same seed → same world, always.
    let world = World::generate(WorldConfig::small(42));
    println!(
        "world: {} cities, {} operators, {} routers, {} interfaces",
        world.cities.len(),
        world.operators.len(),
        world.routers.len(),
        world.interfaces.len()
    );

    // 2. The four synthetic vendor databases of the paper.
    let signals = SignalWorld::new(&world);
    let dbs: Vec<_> = VendorProfile::all_presets()
        .iter()
        .map(|p| build_vendor(&signals, p))
        .collect();

    // 3. Look up a few router interfaces and compare against the truth.
    println!(
        "\n{:<16} {:<18} {:<22} answer",
        "address", "truth", "database"
    );
    for iface in world.interfaces.iter().step_by(world.interfaces.len() / 5) {
        let (city_id, coord) = world.true_location(iface.ip).expect("oracle");
        let city = world.city(city_id);
        println!(
            "{:<16} {} ({}, {:.1},{:.1})",
            iface.ip,
            city.name,
            city.country,
            coord.lat(),
            coord.lon()
        );
        for db in &dbs {
            match db.lookup(iface.ip) {
                Some(rec) => {
                    let err = match rec.coord {
                        Some(c) => format!("{:7.1} km off", c.distance_km(&coord)),
                        None => "no coords".to_string(),
                    };
                    println!(
                        "{:<16} {:<18} {:<22} {} / {} [{}]",
                        "",
                        "",
                        db.name(),
                        rec.country
                            .map(|c| c.to_string())
                            .unwrap_or_else(|| "??".into()),
                        rec.city.as_deref().unwrap_or("(country only)"),
                        err
                    );
                }
                None => println!("{:<16} {:<18} {:<22} NO RECORD", "", "", db.name()),
            }
        }
        println!();
    }
}

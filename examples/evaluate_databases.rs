//! Full evaluation pipeline on a small world: build ground truth, measure
//! coverage / consistency / accuracy of all four databases, and print the
//! data-driven recommendations — the paper's §5 and §6 in miniature.
//!
//! ```sh
//! cargo run --release --example evaluate_databases
//! ```

use routergeo::core::accuracy::evaluate;
use routergeo::core::consistency::consistency;
use routergeo::core::coverage::coverage;
use routergeo::core::groundtruth::GroundTruth;
use routergeo::core::recommend::recommendations;
use routergeo::core::report::pct;
use routergeo::cymru::MappingService;
use routergeo::db::synth::{build_vendor, SignalWorld, VendorProfile};
use routergeo::dns::RuleEngine;
use routergeo::rtt::{build_dataset, ProximityConfig};
use routergeo::trace::{ArkCampaign, ArkConfig, AtlasBuiltins, AtlasConfig, Topology};
use routergeo::world::{World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::small(7));
    let topo = Topology::build(&world);

    // Ark-style interface discovery (§2.1).
    let ark = ArkCampaign::new(&world, &topo, ArkConfig::default()).extract_dataset();
    println!("Ark-topo-router set: {} interfaces", ark.len());

    // Ground truth (§2.3): DNS hints + RTT proximity.
    let engine = RuleEngine::with_gt_rules(&world);
    let whois = MappingService::build(&world);
    let records = AtlasBuiltins::new(&world, &topo, AtlasConfig::default()).run();
    let (rtt, qa) = build_dataset(&world, &records, &ProximityConfig::default());
    let dns = GroundTruth::dns_based(&world, &engine, &whois, 0.05);
    let gt = GroundTruth::combine(dns, GroundTruth::from_rtt(&rtt, &whois));
    println!(
        "ground truth: {} addresses ({} probes disqualified by QA)\n",
        gt.len(),
        qa.centroid_probes.len() + qa.disqualified_probes.len()
    );

    // The four databases (§2.2).
    let signals = SignalWorld::new(&world);
    let dbs: Vec<_> = VendorProfile::all_presets()
        .iter()
        .map(|p| build_vendor(&signals, p))
        .collect();

    // Coverage over the Ark set (§5.1).
    println!(
        "{:<18} country-cov  city-cov   (over the Ark set)",
        "database"
    );
    for db in &dbs {
        let cov = coverage(db, &ark.interfaces);
        println!(
            "{:<18} {:>10}  {:>8}",
            cov.database,
            pct(cov.country_coverage()),
            pct(cov.city_coverage())
        );
    }

    // Consistency (§5.1).
    let cons = consistency(&dbs, &ark.interfaces);
    println!(
        "\nall-database country agreement: {} over {} covered addresses",
        pct(cons.all_agreement()),
        cons.all_country_covered
    );

    // Accuracy vs ground truth (§5.2).
    let report = evaluate(&dbs, &gt, 10);
    println!("\n{:<18} country-acc  city-acc(40km)  city-cov", "database");
    for acc in &report.overall {
        println!(
            "{:<18} {:>10}  {:>13}  {:>8}",
            acc.database,
            pct(acc.country_accuracy()),
            pct(acc.city_accuracy()),
            pct(acc.city_coverage())
        );
    }

    // Recommendations (§6) — derived from the numbers above.
    println!("\nRecommendations:");
    for (i, rec) in recommendations(&report).iter().enumerate() {
        println!("  {}. {}", i + 1, rec.text);
        println!("     evidence: {}", rec.evidence);
    }
}

//! Extensions walk-through: constraint-based (delay-based) geolocation,
//! DRoP-style rule inference, and the warts-lite binary spool format —
//! the pieces a researcher would reach for when the databases fall short.
//!
//! ```sh
//! cargo run --release --example delay_and_inference
//! ```

use routergeo::dns::{infer_rules, InferenceConfig};
use routergeo::rtt::cbg;
use routergeo::trace::{wire, AtlasBuiltins, AtlasConfig, Topology};
use routergeo::world::{World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::small(77));
    let topo = Topology::build(&world);
    let records = AtlasBuiltins::new(&world, &topo, AtlasConfig::default()).run();
    println!("{} built-in measurement records", records.len());

    // 1. Spool the campaign to the warts-lite binary format and replay it.
    let spool = wire::write_all(&records);
    let replayed = wire::read_all(&spool).expect("own spool replays");
    let json_size: usize = records.iter().map(|r| r.to_atlas_json().len()).sum();
    println!(
        "warts-lite spool: {} bytes for {} records ({}x smaller than JSON)",
        spool.len(),
        replayed.len(),
        json_size / spool.len().max(1)
    );

    // 2. Delay-based geolocation: use the probes as CBG landmarks.
    let results = cbg::evaluate_cbg(&world, &replayed, 20.0, 2);
    let mut errs: Vec<f64> = results.iter().map(|(_, _, e)| *e).collect();
    errs.sort_by(f64::total_cmp);
    if !errs.is_empty() {
        println!(
            "\nCBG located {} routers: median error {:.1} km, p90 {:.1} km",
            errs.len(),
            errs[errs.len() / 2],
            errs[errs.len() * 9 / 10]
        );
    }
    // Show one worked example.
    if let Some((ip, est, err)) = results.first() {
        println!(
            "  e.g. {ip}: estimate {:.2},{:.2} from {} landmarks \
             (confidence {:.0} km, actual error {err:.1} km)",
            est.coord.lat(),
            est.coord.lon(),
            est.landmarks,
            est.confidence_km
        );
    }

    // 3. Rule inference: learn per-domain hostname rules from RTT-located
    //    addresses, the way DRoP built its 1,398-domain rule base.
    let samples = routergeo::dns::infer::training_from_world(&world, 3);
    let rules = infer_rules(&world, &samples, &InferenceConfig::default());
    println!(
        "\ninferred decoding rules for {} domains from {} training samples:",
        rules.len(),
        samples.len()
    );
    for r in rules.iter().take(10) {
        println!(
            "  {:<22} label #{} as {:?} (support {}, precision {:.1}%)",
            r.rule.domain_suffix,
            r.rule.label_index,
            r.rule.kind,
            r.support,
            r.precision * 100.0
        );
    }
}

//! Slice sampling helpers mirroring `rand::seq::SliceRandom`.

use crate::{Rng, RngCore};
use std::fmt;

/// Error from [`SliceRandom::choose_weighted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightedError {
    /// The slice was empty.
    NoItem,
    /// A weight was negative or not finite.
    InvalidWeight,
    /// All weights were zero.
    AllWeightsZero,
}

impl fmt::Display for WeightedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightedError::NoItem => f.write_str("cannot sample from an empty slice"),
            WeightedError::InvalidWeight => f.write_str("invalid weight (negative or non-finite)"),
            WeightedError::AllWeightsZero => f.write_str("all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Random-order and random-pick operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Random element with probability proportional to `weight(item)`.
    fn choose_weighted<R, F>(&self, rng: &mut R, weight: F) -> Result<&Self::Item, WeightedError>
    where
        R: RngCore + ?Sized,
        F: Fn(&Self::Item) -> f64;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_weighted<R, F>(&self, rng: &mut R, weight: F) -> Result<&T, WeightedError>
    where
        R: RngCore + ?Sized,
        F: Fn(&T) -> f64,
    {
        if self.is_empty() {
            return Err(WeightedError::NoItem);
        }
        let mut total = 0.0f64;
        for item in self {
            let w = weight(item);
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        let mut roll = rng.gen_range(0.0..total);
        for item in self {
            roll -= weight(item);
            if roll < 0.0 {
                return Ok(item);
            }
        }
        // Float accumulation landed exactly on `total`; return the last
        // positively weighted item.
        self.iter()
            .rev()
            .find(|item| weight(item) > 0.0)
            .ok_or(WeightedError::AllWeightsZero)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_items() {
        let mut rng = StdRng::seed_from_u64(10);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let c = items.choose(&mut rng).expect("non-empty");
            seen[(*c - 1) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_weighted_respects_zero_weights() {
        let mut rng = StdRng::seed_from_u64(11);
        let items = [(0, 0.0), (1, 5.0), (2, 0.0)];
        for _ in 0..100 {
            let picked = items
                .choose_weighted(&mut rng, |(_, w)| *w)
                .expect("positive total");
            assert_eq!(picked.0, 1);
        }
        assert_eq!(
            items.choose_weighted(&mut rng, |_| 0.0),
            Err(WeightedError::AllWeightsZero)
        );
        let empty: [(u8, f64); 0] = [];
        assert_eq!(
            empty.choose_weighted(&mut rng, |(_, w)| *w),
            Err(WeightedError::NoItem)
        );
    }
}

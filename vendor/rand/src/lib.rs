//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, dependency-free implementation of the `rand 0.8` API
//! surface it actually consumes: [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], and the
//! [`seq::SliceRandom`] helpers (`shuffle`, `choose`, `choose_weighted`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for simulation workloads and fully deterministic for a given seed,
//! which is all the synthetic-world code requires. The streams differ from
//! upstream `rand`'s ChaCha-based `StdRng`, so worlds generated before and
//! after the vendoring differ in content while obeying the same invariants.

pub mod rngs;
pub mod seq;

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of `Self` from the "standard" distribution
/// (uniform over the type's natural range; `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

/// A type with a uniform sampler over a half-open or closed interval.
/// The single blanket [`SampleRange`] impl below goes through this trait —
/// one impl per range shape keeps type inference working exactly like
/// upstream `rand` (e.g. `rng.gen_range(0.5..0.9)` infers `f64` from
/// context).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Callers guarantee a non-empty interval.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! uniform_int_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

uniform_int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                _inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

uniform_float_impl!(f32, f64);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range,
    /// matching upstream `rand`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.5..0.9);
            assert!((0.5..0.9).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..64).any(|_| rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
    }
}

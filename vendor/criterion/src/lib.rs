//! Offline stand-in for the parts of the `criterion` crate this workspace
//! uses.
//!
//! The bench files compile and run against this stub: each
//! `bench_function` executes the closure `sample_size` times and prints
//! the mean wall-clock duration per iteration. There is no statistical
//! analysis, outlier rejection, or HTML report — this exists so
//! `cargo bench` works offline and the bench code stays honest.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: usize,
    throughput: Option<Throughput>,
}

impl Bencher {
    /// Time `f`, running it `sample_size` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup iteration.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let total = start.elapsed();
        let per_iter = total / self.iters as u32;
        match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                let rate = n as f64 / per_iter.as_secs_f64();
                println!("    {per_iter:>12.2?}/iter  ({rate:.0} elem/s)");
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                let rate = n as f64 / per_iter.as_secs_f64();
                println!("    {per_iter:>12.2?}/iter  ({rate:.0} B/s)");
            }
            _ => println!("    {per_iter:>12.2?}/iter"),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("benchmark: {name}");
        let mut b = Bencher {
            iters: self.sample_size,
            throughput: None,
        };
        f(&mut b);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }
}

/// Group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("  {name}");
        let mut b = Bencher {
            iters: self.criterion.sample_size,
            throughput: self.throughput,
        };
        f(&mut b);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions, optionally with a custom
/// `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Offline stand-in for the parts of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a small property-testing engine that keeps the seed test files compiling
//! and running unchanged: the [`proptest!`] macro, `prop_assert*` /
//! [`prop_assume!`], [`strategy::Strategy`] with `prop_map`, numeric range
//! strategies, tuples, [`collection::vec`], [`collection::btree_set`],
//! [`option::of`], [`sample::Index`], and a `[class]{min,max}`-subset of
//! string regex strategies.
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test RNG (seeded from the test's module path), there is no failure
//! shrinking, and `proptest-regressions` files are not consulted. A
//! failing case panics with the rendered assertion message.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! Everything the test files import via `use proptest::prelude::*`.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a [`proptest!`] body; failure aborts the case
/// with a rendered message instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Discard the current case (it does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |rng| {
                        $(let $pat = $crate::strategy::Strategy::sample(&($strat), rng);)*
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),*) $body
            )*
        }
    };
}

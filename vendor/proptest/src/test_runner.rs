//! Case loop, config, deterministic RNG, and case-level error type.

use std::fmt;

/// How a single property case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is discarded.
    Reject,
    /// A `prop_assert*` failed with the rendered message.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure with a message.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => f.write_str("inputs rejected by prop_assume!"),
            TestCaseError::Fail(msg) => f.write_str(msg),
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 48 }
    }
}

/// Deterministic RNG driving strategy sampling (xoshiro256++ seeded from
/// the test name, so every run of a given test sees the same cases).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from an arbitrary name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    /// Seed from a 64-bit value.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below() with zero bound");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Drive one property test: sample-and-run until `config.cases` cases were
/// accepted or the rejection budget is exhausted. Panics on the first
/// failing case.
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let reject_budget = config.cases.saturating_mul(16).saturating_add(256);
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > reject_budget {
                    panic!(
                        "{name}: prop_assume! rejected {rejected} inputs before \
                         {} cases were accepted — strategy too narrow",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {accepted} cases: {msg}")
            }
        }
    }
}

//! String strategies: a `&str` pattern of the form `[class]{min,max}` acts
//! as a strategy generating matching strings.
//!
//! This covers the subset of regex syntax the workspace's tests use
//! (character classes with literal chars, `a-z` ranges, and `\n`/`\\`-style
//! escapes, repeated a bounded number of times). Any other pattern panics
//! at sample time with a clear message.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let pattern = ClassPattern::parse(self)
            .unwrap_or_else(|why| panic!("unsupported regex strategy {self:?}: {why}"));
        let len = pattern.min + rng.below(pattern.max - pattern.min + 1);
        (0..len)
            .map(|_| pattern.alphabet[rng.below(pattern.alphabet.len())])
            .collect()
    }
}

struct ClassPattern {
    alphabet: Vec<char>,
    min: usize,
    max: usize,
}

impl ClassPattern {
    fn parse(pattern: &str) -> Result<ClassPattern, &'static str> {
        let rest = pattern.strip_prefix('[').ok_or("expected leading [")?;
        let close = find_unescaped_close(rest).ok_or("missing ]")?;
        let class = &rest[..close];
        let rest = &rest[close + 1..];
        let counts = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .ok_or("expected {min,max} repetition")?;
        let (lo, hi) = counts.split_once(',').ok_or("expected min,max")?;
        let min: usize = lo.trim().parse().map_err(|_| "bad min")?;
        let max: usize = hi.trim().parse().map_err(|_| "bad max")?;
        if min > max {
            return Err("min > max");
        }
        let alphabet = parse_class(class)?;
        if alphabet.is_empty() {
            return Err("empty character class");
        }
        Ok(ClassPattern { alphabet, min, max })
    }
}

fn find_unescaped_close(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b']' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

fn parse_class(class: &str) -> Result<Vec<char>, &'static str> {
    let chars: Vec<char> = class.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = decode_at(&chars, &mut i)?;
        // Range `a-z` when a dash follows and another char closes it.
        if i + 1 < chars.len() && chars[i] == '-' {
            i += 1;
            let end = decode_at(&chars, &mut i)?;
            if (end as u32) < (c as u32) {
                return Err("descending range");
            }
            for u in (c as u32)..=(end as u32) {
                if let Some(ch) = char::from_u32(u) {
                    out.push(ch);
                }
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn decode_at(chars: &[char], i: &mut usize) -> Result<char, &'static str> {
    let c = chars[*i];
    *i += 1;
    if c != '\\' {
        return Ok(c);
    }
    let esc = *chars.get(*i).ok_or("dangling escape")?;
    *i += 1;
    Ok(match esc {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printable_ascii_class() {
        let mut rng = TestRng::from_seed(12);
        let s = "[ -~\n]{0,40}";
        for _ in 0..100 {
            let v = Strategy::sample(&s, &mut rng);
            assert!(v.len() <= 40);
            assert!(v.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_and_literals() {
        let alphabet = parse_class("a-cxyz").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c', 'x', 'y', 'z']);
    }
}

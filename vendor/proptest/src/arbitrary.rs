//! `any::<T>()` — the canonical strategy for a type.

use crate::sample::Index;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int_impl {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index::from_unit(rng.unit_f64())
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (uniform over the type's range).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

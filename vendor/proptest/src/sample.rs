//! Sampling helpers (`prop::sample::Index`).

/// A position into a collection whose length is only known at use time.
/// Obtained via `any::<prop::sample::Index>()`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Index {
    unit: f64,
}

impl Index {
    /// Build from a unit-interval draw.
    pub fn from_unit(unit: f64) -> Index {
        Index {
            unit: unit.clamp(0.0, 1.0),
        }
    }

    /// Resolve against a collection of `len` elements. Panics when
    /// `len == 0`, matching upstream proptest.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (((self.unit * len as f64) as usize).min(len - 1)).max(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_stays_in_bounds() {
        for unit in [0.0, 0.25, 0.999_999, 1.0, 2.0, -1.0] {
            let idx = Index::from_unit(unit);
            for len in [1usize, 2, 7, 100] {
                assert!(idx.index(len) < len);
            }
        }
    }
}

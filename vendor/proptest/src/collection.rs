//! Collection strategies (`vec`, `btree_set`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = sample_len(&self.size, rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
/// If the element domain is too small to reach the target, the set is
/// returned at the size achieved after a bounded number of draws (but
/// always at least `size.start` when that is achievable).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// Strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = sample_len(&self.size, rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        let budget = target * 32 + 64;
        while set.len() < target && attempts < budget {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}

fn sample_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
    assert!(size.start < size.end, "empty size range");
    size.start + rng.below(size.end - size.start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_bounds() {
        let mut rng = TestRng::from_seed(5);
        let s = vec(0u8..=255, 2..9);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_meets_achievable_targets() {
        let mut rng = TestRng::from_seed(6);
        let s = btree_set(0u8..=255, 1..20);
        for _ in 0..50 {
            let set = s.sample(&mut rng);
            assert!(!set.is_empty() && set.len() < 20);
        }
    }
}

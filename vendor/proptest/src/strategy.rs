//! The [`Strategy`] trait and the core combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is simply a sampler over a deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy yielding a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy_impl {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_strategy_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy_impl {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let u = rng.unit_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_strategy_impl!(f32, f64);

macro_rules! tuple_strategy_impl {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy_impl!(A);
tuple_strategy_impl!(A, B);
tuple_strategy_impl!(A, B, C);
tuple_strategy_impl!(A, B, C, D);
tuple_strategy_impl!(A, B, C, D, E);
tuple_strategy_impl!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::from_seed(1);
        let s = (0u32..10, 5i32..=5).prop_map(|(a, b)| a as i64 + b as i64);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn just_is_constant() {
        let mut rng = TestRng::from_seed(2);
        assert_eq!(Just(7u8).sample(&mut rng), 7);
    }
}

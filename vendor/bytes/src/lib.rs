//! Offline stand-in for the parts of the `bytes` crate this workspace uses.
//!
//! [`Bytes`] is an `Arc`-backed immutable byte buffer whose [`Bytes::slice`]
//! and [`Clone`] are O(1) reference-count bumps — the same zero-copy
//! property the RGDB reader relies on. [`BytesMut`] is a growable buffer
//! that [`BytesMut::freeze`]s into a [`Bytes`] without copying. The
//! [`Buf`]/[`BufMut`] traits carry the little-endian cursor accessors the
//! binary format code calls.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, cheaply cloneable and sliceable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-slice sharing the same backing allocation.
    ///
    /// Panics if the range is out of bounds, matching upstream `bytes`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice out of bounds: {lo}..{hi} of {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

/// Growable byte buffer that freezes into [`Bytes`] without copying.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte source. All multi-byte accessors panic when the
/// source is too short, matching upstream `bytes` — callers bounds-check
/// first.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// View of the remaining bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copy exactly `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16_le(513);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_i32_le(-42);
        w.put_u64_le(u64::MAX - 1);
        w.put_slice(b"xyz");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i32_le(), -42);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slices_share_storage_and_bounds_check() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let nested = mid.slice(1..);
        assert_eq!(&nested[..], &[3, 4]);
        assert_eq!(b.slice(..0).len(), 0);
        assert!(std::panic::catch_unwind(|| b.slice(4..10)).is_err());
    }

    #[test]
    fn advance_consumes() {
        let v = [1u8, 2, 3, 4];
        let mut r: &[u8] = &v;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.remaining(), 1);
    }
}
